package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSFromDistances(t *testing.T) {
	g := path(5)
	dist := g.BFSFrom(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSFromUnreachable(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}})
	dist := g.BFSFrom(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable distances = %v, want -1", dist[2:])
	}
}

func TestBFSFromOutOfRange(t *testing.T) {
	g := New(3)
	for _, d := range g.BFSFrom(7) {
		if d != -1 {
			t.Fatal("BFS from invalid source must mark everything unreachable")
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Fatalf("path length %d, want 4 nodes (3 hops)", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("path %v must start at 0 and end at 3", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path %v uses missing edge (%d,%d)", p, p[i], p[i+1])
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := cycle(4)
	p := g.ShortestPath(2, 2)
	if len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v, want [2]", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}})
	if p := g.ShortestPath(0, 3); p != nil {
		t.Fatalf("unreachable path = %v, want nil", p)
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{name: "empty", g: New(0), want: true},
		{name: "single", g: New(1), want: true},
		{name: "two isolated", g: New(2), want: false},
		{name: "path", g: path(6), want: true},
		{name: "cycle", g: cycle(6), want: true},
		{name: "broken path", g: brokenPath(6), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Fatalf("Connected = %t, want %t", got, tt.want)
			}
		})
	}
}

func brokenPath(n int) *Graph {
	return path(n).WithoutEdge(n/2-1, n/2)
}

func TestConnectedIgnoring(t *testing.T) {
	g := path(5) // 0-1-2-3-4
	removed := make([]bool, 5)
	removed[2] = true
	if g.ConnectedIgnoring(removed) {
		t.Fatal("removing the middle of a path must disconnect it")
	}
	removed[2] = false
	removed[0] = true
	if !g.ConnectedIgnoring(removed) {
		t.Fatal("removing an endpoint must keep the path connected")
	}
	all := []bool{true, true, true, true, false}
	if !g.ConnectedIgnoring(all) {
		t.Fatal("a single surviving node is connected by convention")
	}
	everyone := []bool{true, true, true, true, true}
	if !g.ConnectedIgnoring(everyone) {
		t.Fatal("the empty survivor set is vacuously connected")
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {3, 4}})
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	if comps[0][0] != 0 || len(comps[0]) != 2 {
		t.Fatalf("first component %v, want [0 1]", comps[0])
	}
}

func TestComponentsDegenerate(t *testing.T) {
	if comps := New(0).Components(); len(comps) != 0 {
		t.Fatalf("empty graph components = %v, want none", comps)
	}
	comps := New(1).Components()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != 0 {
		t.Fatalf("single-node components = %v, want [[0]]", comps)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "path5", g: path(5), want: 4},
		{name: "cycle6", g: cycle(6), want: 3},
		{name: "cycle7", g: cycle(7), want: 3},
		{name: "K5", g: complete(5), want: 1},
		{name: "single node", g: New(1), want: 0},
		{name: "disconnected", g: New(3), want: -1},
		{name: "empty", g: New(0), want: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Fatalf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	ecc, whole := g.Eccentricity(2)
	if !whole || ecc != 2 {
		t.Fatalf("Eccentricity(2) = (%d,%t), want (2,true)", ecc, whole)
	}
	ecc, whole = g.Eccentricity(0)
	if !whole || ecc != 4 {
		t.Fatalf("Eccentricity(0) = (%d,%t), want (4,true)", ecc, whole)
	}
}

func TestAvgPathLength(t *testing.T) {
	g := complete(4)
	if got := g.AvgPathLength(); got != 1.0 {
		t.Fatalf("AvgPathLength(K4) = %v, want 1", got)
	}
	if got := New(3).AvgPathLength(); got != -1 {
		t.Fatalf("AvgPathLength(disconnected) = %v, want -1", got)
	}
	if got := New(1).AvgPathLength(); got != -1 {
		t.Fatalf("AvgPathLength(singleton) = %v, want -1", got)
	}
}

func TestPropertyShortestPathMatchesBFS(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		g := randomGraph(n, uint64(seed))
		dist := g.BFSFrom(0)
		for t := 1; t < n; t++ {
			p := g.ShortestPath(0, t)
			if dist[t] < 0 {
				if p != nil {
					return false
				}
				continue
			}
			if len(p) != dist[t]+1 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		g := randomGraph(n, uint64(seed))
		seen := make([]bool, n)
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false // node in two components
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDiameterTriangleInequality(t *testing.T) {
	// Any two eccentricities differ by at most the distance between their
	// nodes; in particular diam <= 2*ecc(v) for every v of a connected g.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		g := randomGraph(n, uint64(seed))
		if !g.Connected() {
			return true
		}
		diam := g.Diameter()
		for v := 0; v < n; v++ {
			ecc, _ := g.Eccentricity(v)
			if ecc > diam || diam > 2*ecc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package flow

import (
	"context"
	"sync/atomic"

	"lhg/internal/graph"
)

// Restricted edge connectivity λ′(G): the size of a smallest edge cut whose
// removal disconnects G without isolating a single node — equivalently, the
// minimum over bipartitions (A,B) in which every node keeps a neighbor on
// its own side. It refines λ for fault-tolerance vocabularies (super-λ:
// every minimum cut isolates one node), and is computed here on the same
// flow arena as λ and κ.
//
// Reduction to pairwise flows: λ′(G) = min over vertex-disjoint edge pairs
// (e, f) of the minimum edge cut separating e's endpoints from f's, when
// every node of G has degree ≥ 1.
//
//   - (≤) A minimum cut separating V(e) from V(f) has no node isolated on
//     its own side: such a node w is not an endpoint of e or f (those keep
//     their edge partner), and moving w across strictly shrinks the cut —
//     contradicting minimality. So the pair cut is itself a restricted
//     bipartition.
//   - (≥) Any restricted bipartition keeps an edge on each side (every node
//     has a same-side neighbor), and those two edges are a vertex-disjoint
//     pair the bipartition separates.
//
// λ′ is undefined (-1 here) when no vertex-disjoint edge pair exists (stars,
// triangles, fewer than two edges) or when some node is isolated — then no
// bipartition can keep a neighbor on its side.

// edgePairProbe is one λ′ probe: canonical edge indices into g.Edges().
type edgePairProbe struct{ i, j int32 }

// restrictedPairs enumerates the vertex-disjoint canonical edge pairs.
func restrictedPairs(edges []graph.Edge) []edgePairProbe {
	var pairs []edgePairProbe
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[i].U == edges[j].U || edges[i].U == edges[j].V ||
				edges[i].V == edges[j].U || edges[i].V == edges[j].V {
				continue
			}
			pairs = append(pairs, edgePairProbe{int32(i), int32(j)})
		}
	}
	return pairs
}

// buildRestricted assembles the λ′ arena: the usual opposing unit-arc pair
// per edge on nodes 0..n-1, then a super source S=n and super sink T=n+1
// with pristine zero-capacity arcs S→v and v→T for every node. armEdgePair
// lifts four of those per probe, so the whole sweep is one topology.
func (nw *network) buildRestricted(g *graph.Graph) {
	n := g.Order()
	nw.reset(n + 2)
	g.EachEdge(func(u, v int) {
		nw.addArc(u, v, 1)
		nw.addArc(v, u, 1)
	})
	for v := 0; v < n; v++ {
		nw.addArc(n, v, 0)   // armed per probe: S reaches the source edge
		nw.addArc(v, n+1, 0) // armed per probe: the sink edge reaches T
	}
	nw.finish()
}

// armEdgePair rearms the pristine capacities and opens the terminal arcs of
// one probe: S feeds both endpoints of the source edge, both endpoints of
// the sink edge drain to T. Terminal capacity 2n exceeds any unit-capacity
// cut, so minimum cuts consist of graph arcs only. The terminal arcs of
// node v sit at 4m + 4v (S→v) and 4m + 4v + 2 (v→T) by construction.
func (nw *network) armEdgePair(m int, src, dst graph.Edge) {
	nw.rearm()
	c := int32(2 * nw.n)
	base := 4 * m
	nw.cap[base+4*src.U] = c
	nw.cap[base+4*src.V] = c
	nw.cap[base+4*dst.U+2] = c
	nw.cap[base+4*dst.V+2] = c
}

// RestrictedEdgeConnectivityCtx returns λ′(G) across `workers` goroutines
// under ctx, or -1 when λ′ is undefined for g. The pairwise probe sweep
// shares one arena per worker (rearm + terminal re-arm per probe) and
// early-exits every flow at the shared running minimum.
func RestrictedEdgeConnectivityCtx(ctx context.Context, g *graph.Graph, workers int) (int, error) {
	if minDeg, _ := g.MinDegree(); g.Order() == 0 || minDeg == 0 {
		return -1, ctx.Err()
	}
	edges := g.Edges()
	pairs := restrictedPairs(edges)
	if len(pairs) == 0 {
		return -1, ctx.Err()
	}
	n, m := g.Order(), len(edges)
	workers = graph.ClampWorkers(workers, len(pairs))
	if workers == 1 {
		best := inf
		nw := getNetwork(n + 2)
		defer putNetwork(nw)
		nw.watch(ctx)
		nw.buildRestricted(g)
		for _, p := range pairs {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			nw.armEdgePair(m, edges[p.i], edges[p.j])
			if f := nw.maxflow(n, n+1, best); f < best {
				best = f
				if best == 0 {
					break
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return best, nil
	}
	var shared atomic.Int64
	shared.Store(int64(inf))
	runStealing(ctx, "flow.restricted.worker", len(pairs), workers, func(w int, next func() (int, bool)) {
		nw := getNetwork(n + 2)
		defer putNetwork(nw)
		nw.watch(ctx)
		built := false
		for {
			i, ok := next()
			if !ok {
				return
			}
			limit := int(shared.Load())
			if limit == 0 {
				return
			}
			if !built {
				nw.buildRestricted(g)
				built = true
			}
			p := pairs[i]
			nw.armEdgePair(m, edges[p.i], edges[p.j])
			if f := nw.maxflow(n, n+1, limit); f < limit && ctx.Err() == nil {
				atomicMin(&shared, f)
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(shared.Load()), nil
}

// RestrictedEdgeConnectivity returns λ′(G) (or -1 when undefined) without
// cancellation. See RestrictedEdgeConnectivityCtx.
func RestrictedEdgeConnectivity(g *graph.Graph, workers int) int {
	v, _ := RestrictedEdgeConnectivityCtx(context.Background(), g, workers)
	return v
}

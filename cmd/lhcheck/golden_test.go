package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// denseJSON renders the stdin fixture that actually exercises the
// sparsify fast path: a 64-node circulant (±1, ±2 ring, so δ = 4) plus a
// clique on the first 32 nodes, pushing m past the SparsifyCutoff·k·n
// threshold while keeping κ = λ = 4.
func denseJSON() string {
	const n, core = 64, 32
	seen := map[[2]int]bool{}
	var edges [][2]int
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			return
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n)
		add(i, (i+2)%n)
	}
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			add(u, v)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"nodes":%d,"edges":[`, n)
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", e[0], e[1])
	}
	b.WriteString("]}")
	return b.String()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestJSONGoldenByteStable enforces the -json contract: the same graph
// yields the same bytes regardless of -workers, -sparsify and -prescreen,
// and those bytes match the checked-in golden. The dense stdin case
// triggers the certificate fast path; the built case stays on the classic
// path.
func TestJSONGoldenByteStable(t *testing.T) {
	cases := []struct {
		name, golden string
		args         []string
		in           string
		wantErr      error
	}{
		{
			name:   "built-kdiamond",
			golden: "json-kdiamond-14-3.golden",
			args:   []string{"-constraint", "kdiamond", "-n", "14", "-k", "3", "-json"},
		},
		{
			name:    "dense-stdin",
			golden:  "json-dense.golden",
			args:    []string{"-stdin", "-k", "4", "-json"},
			in:      denseJSON(),
			wantErr: errNotLHG, // clique edges are removable: P3 fails
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []string{"1", "4"} {
				for _, sparsify := range []string{"true", "false"} {
					for _, prescreen := range []string{"true", "false"} {
						args := append(append([]string{}, tc.args...),
							"-workers", workers, "-sparsify", sparsify, "-prescreen", prescreen)
						var buf bytes.Buffer
						err := run(args, strings.NewReader(tc.in), &buf)
						if tc.wantErr == nil && err != nil {
							t.Fatal(err)
						}
						if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
							t.Fatalf("err = %v, want %v", err, tc.wantErr)
						}
						if ref == nil {
							ref = append([]byte(nil), buf.Bytes()...)
						} else if !bytes.Equal(ref, buf.Bytes()) {
							t.Fatalf("-workers %s -sparsify %s -prescreen %s changed the bytes:\n%s\nvs\n%s",
								workers, sparsify, prescreen, buf.Bytes(), ref)
						}
					}
				}
			}
			checkGolden(t, tc.golden, ref)
		})
	}
}

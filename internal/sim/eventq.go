package sim

import "container/heap"

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (a stable tie-break keeps runs deterministic).
type Event struct {
	Time int64
	Fn   func()

	seq int64
}

// EventQueue is a deterministic discrete-event scheduler. The zero value is
// ready to use.
type EventQueue struct {
	h    eventHeap
	now  int64
	seqs int64
}

// Now returns the current simulated time.
func (q *EventQueue) Now() int64 { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// At schedules fn to run at absolute time t. Scheduling in the past runs at
// the current time instead (events never travel backwards).
func (q *EventQueue) At(t int64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seqs++
	heap.Push(&q.h, &Event{Time: t, Fn: fn, seq: q.seqs})
}

// After schedules fn to run d ticks from now.
func (q *EventQueue) After(d int64, fn func()) { q.At(q.now+d, fn) }

// Step runs the earliest pending event and reports whether one ran.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event) //nolint:forcetypeassert // heap only holds *Event
	q.now = ev.Time
	ev.Fn()
	return true
}

// Run drains the queue, stopping early once more than maxEvents events have
// run (pass a negative budget for no limit). It returns the number of
// events executed.
func (q *EventQueue) Run(maxEvents int64) int64 {
	var n int64
	for q.Step() {
		n++
		if maxEvents >= 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil drains events with Time <= deadline and returns the number of
// events executed. The simulated clock ends at deadline even if the queue
// empties earlier.
func (q *EventQueue) RunUntil(deadline int64) int64 {
	var n int64
	for len(q.h) > 0 && q.h[0].Time <= deadline {
		q.Step()
		n++
	}
	if q.now < deadline {
		q.now = deadline
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("verify|ktree|n=%d|k=3|canonical|props=15", i)
	}
	return ks
}

func TestLookupDeterministicAcrossRings(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1"}
	r1, err := New(backends)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring built from the same members (any order) must agree on
	// every placement: frontends only coordinate through this property.
	r2, _ := New([]string{"c:1", "a:1", "b:1"})
	for _, k := range keys(500) {
		b1, ok1 := r1.Lookup(k)
		b2, ok2 := r2.Lookup(k)
		if !ok1 || !ok2 || b1 != b2 {
			t.Fatalf("rings disagree on %q: %s vs %s", k, b1, b2)
		}
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1"}
	r1, _ := New(backends)
	r2, _ := New(backends, WithSeed(42))
	moved := 0
	for _, k := range keys(500) {
		b1, _ := r1.Lookup(k)
		b2, _ := r2.Lookup(k)
		if b1 != b2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("distinct seeds produced identical placements")
	}
}

func TestBalance(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1", "d:1"}
	r, _ := New(backends)
	load := map[string]int{}
	const total = 4000
	for _, k := range keys(total) {
		b, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed")
		}
		load[b]++
	}
	want := total / len(backends)
	for b, n := range load {
		if n < want/2 || n > want*2 {
			t.Fatalf("backend %s owns %d/%d keys, outside [%d, %d]: %v",
				b, n, total, want/2, want*2, load)
		}
	}
}

// TestRemovalRemapsOnlyLostArcs is the consistent-hashing property: keys
// whose home survives keep it when another backend leaves the ring.
func TestRemovalRemapsOnlyLostArcs(t *testing.T) {
	full, _ := New([]string{"a:1", "b:1", "c:1", "d:1"})
	reduced, _ := New([]string{"a:1", "b:1", "c:1"})
	movedFromSurvivor := 0
	remapped := 0
	for _, k := range keys(2000) {
		before, _ := full.Lookup(k)
		after, _ := reduced.Lookup(k)
		if before == "d:1" {
			remapped++
			continue
		}
		if before != after {
			movedFromSurvivor++
		}
	}
	if movedFromSurvivor != 0 {
		t.Fatalf("%d keys moved between surviving backends", movedFromSurvivor)
	}
	if remapped == 0 {
		t.Fatal("the departed backend owned no keys; the test proves nothing")
	}
}

func TestUnhealthySkippedAndRestored(t *testing.T) {
	r, _ := New([]string{"a:1", "b:1"})
	var onA string
	for _, k := range keys(200) {
		if b, _ := r.Lookup(k); b == "a:1" {
			onA = k
			break
		}
	}
	if onA == "" {
		t.Fatal("no key mapped to a:1")
	}
	r.SetHealthy("a:1", false)
	if b, ok := r.Lookup(onA); !ok || b != "b:1" {
		t.Fatalf("with a:1 down, Lookup = %q ok=%t, want b:1", b, ok)
	}
	r.SetHealthy("a:1", true)
	if b, _ := r.Lookup(onA); b != "a:1" {
		t.Fatalf("restored backend must reclaim its keys, got %q", b)
	}

	r.SetHealthy("a:1", false)
	r.SetHealthy("b:1", false)
	if _, ok := r.Lookup(onA); ok {
		t.Fatal("all-down ring must report no home")
	}
}

func TestSequenceCoversFleetOnce(t *testing.T) {
	r, _ := New([]string{"a:1", "b:1", "c:1"})
	for _, k := range keys(50) {
		seq := r.Sequence(k)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%q) = %v, want all 3 backends", k, seq)
		}
		seen := map[string]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("Sequence(%q) repeats %s: %v", k, b, seq)
			}
			seen[b] = true
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	if _, err := New([]string{""}); err == nil {
		t.Fatal("empty backend name must be rejected")
	}
	r, err := New([]string{"a:1", "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Backends(); len(got) != 1 {
		t.Fatalf("duplicate backends must collapse, got %v", got)
	}
}

package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomDomGraph(seed int64, n, percent int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(100) < percent {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// TestDominatingSetCovers asserts the defining property on random graphs of
// every density: each node is a member or adjacent to one. Isolated nodes
// must always be members — nothing else can cover them.
func TestDominatingSetCovers(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		n := 1 + int(seed)*3%40
		g := randomDomGraph(seed, n, int(seed*7%101))
		set := g.DominatingSet()
		member := make([]bool, n)
		for _, v := range set {
			if v < 0 || v >= n {
				t.Fatalf("seed=%d: member %d out of range", seed, v)
			}
			if member[v] {
				t.Fatalf("seed=%d: member %d repeated", seed, v)
			}
			member[v] = true
		}
		for v := 0; v < n; v++ {
			covered := member[v]
			for _, w := range g.Neighbors(v) {
				covered = covered || member[w]
			}
			if !covered {
				t.Fatalf("seed=%d n=%d: node %d is neither a member nor adjacent to one", seed, n, v)
			}
			if g.Degree(v) == 0 && !member[v] {
				t.Fatalf("seed=%d: isolated node %d not in the set", seed, v)
			}
		}
	}
}

// TestDominatingSetDeterministic pins reproducibility (the Matula λ pass
// must probe the same pairs run to run) and the greedy-scan shape: members
// arrive in increasing order, and node 0 is always first on any non-empty
// graph.
func TestDominatingSetDeterministic(t *testing.T) {
	g := randomDomGraph(11, 30, 20)
	first := g.DominatingSet()
	if len(first) == 0 || first[0] != 0 {
		t.Fatalf("greedy scan must admit node 0 first, got %v", first)
	}
	for i := 1; i < len(first); i++ {
		if first[i] <= first[i-1] {
			t.Fatalf("members not in scan order: %v", first)
		}
	}
	for i := 0; i < 5; i++ {
		if again := g.DominatingSet(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d diverged: %v vs %v", i, again, first)
		}
	}
	if set := NewBuilder(0).Freeze().DominatingSet(); len(set) != 0 {
		t.Fatalf("empty graph produced a non-empty dominating set: %v", set)
	}
}

// TestUnionFind exercises the forest against a naive label array on a
// random merge sequence: Find/Same/Count/SetSize agree at every step, and
// Union reports a merge exactly when the labels differed.
func TestUnionFind(t *testing.T) {
	const n = 64
	uf := NewUnionFind(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	if uf.Count() != n {
		t.Fatalf("fresh forest has %d sets, want %d", uf.Count(), n)
	}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 200; step++ {
		x, y := rng.Intn(n), rng.Intn(n)
		want := label[x] != label[y]
		if got := uf.Union(x, y); got != want {
			t.Fatalf("step %d: Union(%d,%d)=%t, labels say %t", step, x, y, got, want)
		}
		if want {
			old, new_ := label[y], label[x]
			for i := range label {
				if label[i] == old {
					label[i] = new_
				}
			}
		}
		// Spot-check the queries against the labels.
		a, b := rng.Intn(n), rng.Intn(n)
		if uf.Same(a, b) != (label[a] == label[b]) {
			t.Fatalf("step %d: Same(%d,%d) disagrees with labels", step, a, b)
		}
		size := 0
		for i := range label {
			if label[i] == label[a] {
				size++
			}
		}
		if got := uf.SetSize(a); got != size {
			t.Fatalf("step %d: SetSize(%d)=%d, labels say %d", step, a, got, size)
		}
		sets := map[int]bool{}
		for i := range label {
			sets[label[i]] = true
		}
		if uf.Count() != len(sets) {
			t.Fatalf("step %d: Count()=%d, labels say %d", step, uf.Count(), len(sets))
		}
	}
	uf.Reset()
	if uf.Count() != n || !uf.Same(0, 0) || uf.Same(0, 1) || uf.SetSize(7) != 1 {
		t.Fatal("Reset did not restore singleton sets")
	}
}

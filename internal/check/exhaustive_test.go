package check

import (
	"testing"

	"lhg/internal/graph"
)

// Differential testing of the full verifier against brute force on every
// graph of up to 6 nodes (up to isomorphism-free enumeration is overkill;
// we enumerate labeled graphs on 5 nodes exhaustively and sample 6-node
// ones by bitmask stride). Each property is recomputed from first
// principles: connectivity by subset removal, minimality by single-edge
// deletion, diameter by BFS.

// buildFromMask decodes a labeled graph on n nodes from an edge bitmask.
func buildFromMask(n int, mask uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if mask&(1<<bit) != 0 {
				b.MustAddEdge(u, v)
			}
			bit++
		}
	}
	return b.Freeze()
}

func bruteKappa(g *graph.Graph) int {
	n := g.Order()
	if n < 2 || !g.Connected() {
		return 0
	}
	removed := make([]bool, n)
	disconnects := func(size int) bool {
		var r func(start, left int) bool
		r = func(start, left int) bool {
			if left == 0 {
				return !g.ConnectedIgnoring(removed)
			}
			for v := start; v <= n-left; v++ {
				removed[v] = true
				if r(v+1, left-1) {
					removed[v] = false
					return true
				}
				removed[v] = false
			}
			return false
		}
		return r(0, size)
	}
	for size := 1; size <= n-2; size++ {
		if disconnects(size) {
			return size
		}
	}
	return n - 1
}

func bruteLambda(g *graph.Graph) int {
	if g.Order() < 2 || !g.Connected() {
		return 0
	}
	edges := g.Edges()
	var rec func(b *graph.Builder, start, left int) bool
	rec = func(b *graph.Builder, start, left int) bool {
		if left == 0 {
			return !b.Freeze().Connected()
		}
		for i := start; i <= len(edges)-left; i++ {
			b.RemoveEdge(edges[i].U, edges[i].V)
			if rec(b, i+1, left-1) {
				b.MustAddEdge(edges[i].U, edges[i].V)
				return true
			}
			b.MustAddEdge(edges[i].U, edges[i].V)
		}
		return false
	}
	for size := 1; size <= len(edges); size++ {
		if rec(g.Thaw(), 0, size) {
			return size
		}
	}
	return len(edges)
}

func bruteMinimal(g *graph.Graph, kappa, lambda int) bool {
	if kappa == 0 {
		return false
	}
	for _, e := range g.Edges() {
		h := g.WithoutEdge(e.U, e.V)
		if bruteKappa(h) >= kappa && bruteLambda(h) >= lambda {
			return false
		}
	}
	return true
}

func TestVerifyExhaustiveFiveNodes(t *testing.T) {
	const n = 5
	edgesMax := n * (n - 1) / 2 // 10 -> 1024 graphs
	for mask := uint64(0); mask < 1<<edgesMax; mask++ {
		g := buildFromMask(n, mask)
		if g.Size() < n-1 {
			continue // cannot be connected; verifier covered by other tests
		}
		r, err := Verify(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantKappa := bruteKappa(g)
		wantLambda := bruteLambda(g)
		if r.NodeConnectivity != wantKappa {
			t.Fatalf("mask %d: κ=%d, brute %d", mask, r.NodeConnectivity, wantKappa)
		}
		if r.EdgeConnectivity != wantLambda {
			t.Fatalf("mask %d: λ=%d, brute %d", mask, r.EdgeConnectivity, wantLambda)
		}
		if want := bruteMinimal(g, wantKappa, wantLambda); r.LinkMinimal != want {
			t.Fatalf("mask %d: minimal=%t, brute %t (κ=%d λ=%d m=%d)",
				mask, r.LinkMinimal, want, wantKappa, wantLambda, g.Size())
		}
	}
}

func TestVerifySampledSixNodes(t *testing.T) {
	const n = 6
	edgesMax := n * (n - 1) / 2 // 15 -> 32768 graphs; stride-sample
	for mask := uint64(0); mask < 1<<edgesMax; mask += 97 {
		g := buildFromMask(n, mask)
		if !g.Connected() {
			continue
		}
		r, err := Verify(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.NodeConnectivity != bruteKappa(g) || r.EdgeConnectivity != bruteLambda(g) {
			t.Fatalf("mask %d: κ/λ mismatch", mask)
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E4", "E9", "E14"} {
		if !strings.Contains(out, id+" ") {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E99"}, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}

// TestEveryExperimentRuns executes each experiment individually; the
// experiment functions return errors whenever a measured value contradicts
// the paper claim, so this is the top-level reproduction test.
func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range experimentTable() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-only", e.ID}, &buf); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if !strings.Contains(buf.String(), "== "+e.ID+":") {
				t.Fatalf("%s produced no header:\n%s", e.ID, buf.String())
			}
		})
	}
}

// TestE10ShapeHolds rechecks the headline quantitative shape on the
// experiment output: Harary's diameter column must grow at least 8x from
// n=16 to n=512 while K-DIAMOND's stays below 4x.
func TestE10ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E10"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "512") {
		t.Fatalf("E10 table truncated:\n%s", out)
	}
}

func TestWriteFigures(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-figures", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 { // 8 DOT + 8 SVG
		t.Fatalf("wrote %d figure files, want 16", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2b_ktree_9_3.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `label="R0"`) {
		t.Fatalf("figure misses blueprint labels:\n%s", data)
	}
}

package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	val := json.RawMessage(`{"is_lhg":true,"n":21}`)
	if err := s.Put("verify|ktree|n=21", "verify", val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("verify|ktree|n=21")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%t err=%v", ok, err)
	}
	if string(got) != string(val) {
		t.Fatalf("Get = %s, want %s", got, val)
	}
	if _, ok, _ := s.Get("verify|ktree|n=22"); ok {
		t.Fatal("unknown key must miss")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenReplaysIndex(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir)
	for _, k := range []string{"a", "b", "c"} {
		if err := s1.Put(k, "verify", json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		if !s2.Contains(k) {
			t.Fatalf("reopened index lost %q", k)
		}
		if _, ok, err := s2.Get(k); !ok || err != nil {
			t.Fatalf("reopened Get(%q): ok=%t err=%v", k, ok, err)
		}
	}
}

// TestCrossInstanceVisibility is the fleet-sharing property: a write through
// one handle is readable through another handle opened BEFORE the write —
// the index is an optimization, not the source of truth.
func TestCrossInstanceVisibility(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	if err := a.Put("k", "verify", json.RawMessage(`"v"`)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get("k")
	if err != nil || !ok {
		t.Fatalf("sibling Get: ok=%t err=%v", ok, err)
	}
	if string(got) != `"v"` {
		t.Fatalf("sibling Get = %s", got)
	}
}

func TestKeyMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	// Forge an entry whose content hash does not match its recorded key.
	env, _ := json.Marshal(Envelope{Key: "other", Kind: "verify", Value: json.RawMessage(`1`)})
	if err := os.WriteFile(filepath.Join(dir, Key("mine")+".json"), env, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("mine"); err == nil || !strings.Contains(err.Error(), "holds key") {
		t.Fatalf("forged entry must error, got %v", err)
	}
}

func TestPutLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 10; i++ {
		if err := s.Put("k", "verify", json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("dir holds %v, want exactly one entry", names)
	}
}

// --- leases ----------------------------------------------------------------

func TestLeaseExclusive(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir) // second process in miniature
	la, ok, err := a.Acquire("k", time.Minute)
	if err != nil || !ok {
		t.Fatalf("first Acquire: ok=%t err=%v", ok, err)
	}
	if _, ok, err := b.Acquire("k", time.Minute); ok || err != nil {
		t.Fatalf("second Acquire while held: ok=%t err=%v, want false/nil", ok, err)
	}
	la.Release()
	if _, ok, err := b.Acquire("k", time.Minute); !ok || err != nil {
		t.Fatalf("Acquire after release: ok=%t err=%v", ok, err)
	}
}

func TestLeaseTakeoverAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	if _, ok, _ := a.Acquire("k", time.Millisecond); !ok {
		t.Fatal("first Acquire failed")
	}
	time.Sleep(5 * time.Millisecond)
	// The holder is "crashed": its claim expired and must be taken over.
	lb, ok, err := b.Acquire("k", time.Minute)
	if err != nil || !ok {
		t.Fatalf("takeover Acquire: ok=%t err=%v", ok, err)
	}
	lb.Release()
}

func TestStaleReleaseDoesNotStealNewLease(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	la, _, _ := a.Acquire("k", time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if _, ok, _ := b.Acquire("k", time.Minute); !ok {
		t.Fatal("takeover failed")
	}
	la.Release() // expired claim: must NOT remove b's live lease
	if _, ok, _ := a.Acquire("k", time.Minute); ok {
		t.Fatal("b's lease was stolen by a stale Release")
	}
}

func TestAcquireContendedOnce(t *testing.T) {
	s, _ := Open(t.TempDir())
	const contenders = 32
	var won atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok, err := s.Acquire("k", time.Minute); err != nil {
				t.Errorf("Acquire: %v", err)
			} else if ok {
				won.Add(1)
			}
		}()
	}
	wg.Wait()
	if won.Load() != 1 {
		t.Fatalf("%d contenders won the lease, want exactly 1", won.Load())
	}
}

func TestWaitValueSeesLeaderPublish(t *testing.T) {
	dir := t.TempDir()
	leader, _ := Open(dir)
	follower, _ := Open(dir)
	l, ok, _ := leader.Acquire("k", time.Minute)
	if !ok {
		t.Fatal("leader Acquire failed")
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		leader.Put("k", "verify", json.RawMessage(`"report"`))
		l.Release()
	}()
	v, ok, err := follower.WaitValue(context.Background(), "k", 5*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("WaitValue: ok=%t err=%v", ok, err)
	}
	if string(v) != `"report"` {
		t.Fatalf("WaitValue = %s", v)
	}
}

func TestWaitValueReturnsOnDeadLeader(t *testing.T) {
	dir := t.TempDir()
	leader, _ := Open(dir)
	follower, _ := Open(dir)
	if _, ok, _ := leader.Acquire("k", 10*time.Millisecond); !ok {
		t.Fatal("leader Acquire failed")
	}
	// The leader dies without publishing; the waiter must come back with
	// found=false once the claim expires, so the caller can take over.
	v, ok, err := follower.WaitValue(context.Background(), "k", 5*time.Millisecond)
	if err != nil || ok {
		t.Fatalf("WaitValue after leader death: v=%s ok=%t err=%v, want miss", v, ok, err)
	}
}

func TestWaitValueHonorsContext(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if _, ok, _ := s.Acquire("k", time.Minute); !ok {
		t.Fatal("Acquire failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, ok, err := s.WaitValue(ctx, "k", 5*time.Millisecond); ok || err == nil {
		t.Fatalf("WaitValue must surface ctx end: ok=%t err=%v", ok, err)
	}
}

package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunVerifiesBuiltGraph(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "14", "-k", "3"}, strings.NewReader(""), &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"node connectivity:    3 (P1 pass)", "LHG ✓", "k-regular:            true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStdinGraph(t *testing.T) {
	// A 4-cycle is a fine (n,2) "LHG" under the vacuous k=2 diameter bound.
	in := `{"nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`
	var buf bytes.Buffer
	if err := run([]string{"-stdin", "-k", "2"}, strings.NewReader(in), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LHG ✓") {
		t.Fatalf("expected pass:\n%s", buf.String())
	}
}

func TestRunStdinRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stdin", "-k", "2"}, strings.NewReader("junk"), &buf); err == nil {
		t.Fatal("garbage stdin must error")
	}
}

func TestRunFailsOnNonLHG(t *testing.T) {
	// A 4-cycle plus chord is not link-minimal.
	in := `{"nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0],[0,2]]}`
	var buf bytes.Buffer
	err := run([]string{"-stdin", "-k", "2"}, strings.NewReader(in), &buf)
	if !errors.Is(err, errNotLHG) {
		t.Fatalf("err = %v, want errNotLHG", err)
	}
	if !strings.Contains(buf.String(), "removable edge") {
		t.Fatalf("expected removable-edge note:\n%s", buf.String())
	}
}

func TestRunArgumentErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "bogus"}, strings.NewReader(""), &buf); err == nil {
		t.Fatal("bad constraint must error")
	}
	if err := run([]string{"-constraint", "ktree", "-n", "5", "-k", "3"}, strings.NewReader(""), &buf); err == nil {
		t.Fatal("unbuildable pair must error")
	}
}

func TestRunBlueprintMode(t *testing.T) {
	// A hand-written minimal K-TREE blueprint: root + 3 shared leaves.
	in := `{"k":3,"parent":[-1,0,0,0],"kind":[1,2,2,2],"added":[false,false,false,false]}`
	var buf bytes.Buffer
	if err := run([]string{"-blueprint"}, strings.NewReader(in), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"satisfies K-TREE:     yes",
		"satisfies K-DIAMOND:  yes",
		"satisfies JD:         yes",
		"LHG ✓",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBlueprintModeRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-blueprint"}, strings.NewReader("junk"), &buf); err == nil {
		t.Fatal("garbage blueprint must error")
	}
}

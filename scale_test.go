package lhg_test

// Large-scale integration tests. They take a few seconds and are skipped
// under `go test -short`.

import (
	"context"
	"testing"

	"lhg"
	"lhg/internal/check"
	"lhg/internal/flood"
	"lhg/internal/flow"
	"lhg/internal/sim"
)

func TestScaleBuildAndFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const (
		n = 5000
		k = 5
	)
	for _, c := range []lhg.Constraint{lhg.Harary, lhg.KTree, lhg.KDiamond} {
		g, err := lhg.Build(context.Background(), c, n, k)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if g.Order() != n {
			t.Fatalf("%v: %d nodes", c, g.Order())
		}
		if minDeg, _ := g.MinDegree(); minDeg < k {
			t.Fatalf("%v: min degree %d", c, minDeg)
		}
		// Flood through k-1 random failures: must be complete.
		rng := sim.NewRNG(31)
		fails, err := flood.RandomNodeFailures(g, 0, k-1, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lhg.Flood(context.Background(), g, 0, lhg.WithFailures(fails))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("%v: flood incomplete at n=%d", c, n)
		}
		// The diameter shapes at scale.
		ecc, whole := g.Eccentricity(0)
		if !whole {
			t.Fatalf("%v: disconnected", c)
		}
		if c != lhg.Harary {
			if bound := check.DiameterBound(n, k); 2*ecc > 2*bound {
				t.Fatalf("%v: eccentricity %d way over the log bound %d", c, ecc, bound)
			}
		}
	}
}

func TestScaleConnectivityExact(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	// Exact k-connectivity via early-exit max flow at a size where the
	// naive approach would be prohibitive.
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !flow.IsKNodeConnected(g, 4) {
		t.Fatal("K-DIAMOND(1000,4) must be 4-node-connected")
	}
	if !flow.IsKEdgeConnected(g, 4) {
		t.Fatal("K-DIAMOND(1000,4) must be 4-link-connected")
	}
	if flow.IsKNodeConnected(g, 5) {
		t.Fatal("a 4-regular graph cannot be 5-connected")
	}
}

func TestScaleGrowerToThousands(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	gr, err := lhg.NewKDiamondGrower(4)
	if err != nil {
		t.Fatal(err)
	}
	maxChurn := 0
	for gr.N() < 3000 {
		d, err := gr.Grow()
		if err != nil {
			t.Fatal(err)
		}
		if d.Total() > maxChurn {
			maxChurn = d.Total()
		}
		// Spot-check full LHG properties once on the way up (the exact
		// verifier is O(n·maxflow); every-step checks live in the core
		// suite at small n).
		if gr.N() == 600 {
			ok, err := lhg.IsLHG(context.Background(), gr.Snapshot(), 4)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("grower graph fails LHG verification at n=%d", gr.N())
			}
		}
	}
	if maxChurn > 3*4*4 {
		t.Fatalf("grower churn %d exceeded O(k²) on the way to n=3000", maxChurn)
	}
	if !gr.Snapshot().Connected() {
		t.Fatal("grower graph disconnected at n=3000")
	}
}

func TestScaleProtocolBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	g, err := lhg.Build(context.Background(), lhg.KTree, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lhg.Flood(context.Background(), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("fault-free flood incomplete")
	}
	// Logarithmic latency at scale: 2000 nodes, k=4 -> about
	// 2*log3(2000) ≈ 14 rounds; assert generously.
	if res.Rounds > 20 {
		t.Fatalf("flood took %d rounds at n=2000 — not logarithmic", res.Rounds)
	}
}

package flood

import (
	"context"
	"errors"
	"testing"

	"lhg/internal/graph"
)

// TestRunCtxPreCanceled: cancellation is polled once per round, so an
// already-canceled context aborts before the first forwarding round.
func TestRunCtxPreCanceled(t *testing.T) {
	b := graph.NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.MustAddEdge(v, (v+1)%6)
	}
	g := b.Freeze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, g, 0, Failures{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The Background wrapper is unaffected.
	res, err := Run(g, 0, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Reached != 6 {
		t.Fatalf("flood on C_6: %v", res)
	}
}

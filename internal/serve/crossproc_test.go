package serve

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"lhg/internal/obs"
	"lhg/internal/store"
)

// Cross-process singleflight. Two independent serve.Server instances —
// separate LRUs, separate flight groups, the closest an in-process test
// gets to two lhgd processes — share one report store directory. A burst
// of identical requests split across both must still run exactly ONE
// verification campaign fleet-wide: each instance elects one in-process
// flight leader, the two leaders contend for the store lease, and the
// loser adopts the winner's published value instead of recomputing.
//
// The obs registry is process-global, so check.verify.runs counts
// campaigns across BOTH instances; the lease counters pin the protocol
// (one acquisition won, at least one leader waited).

// newFleet opens count servers over one shared store directory.
func newFleet(t *testing.T, dir string, count int, opts Options) []*httptest.Server {
	t.Helper()
	fleet := make([]*httptest.Server, count)
	for i := range fleet {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Store = st
		fleet[i] = httptest.NewServer(New(o).Handler())
		t.Cleanup(fleet[i].Close)
	}
	return fleet
}

func TestCrossProcessBurstRunsOneCampaign(t *testing.T) {
	dir := t.TempDir()
	fleet := newFleet(t, dir, 2, Options{CacheSize: 16})

	// Warm the graph on both instances first: graphs are LRU-only (not
	// persisted), so each instance builds its own — that is build-side
	// work, and the assertion below is about verify campaigns.
	body := `{"constraint":"kdiamond","n":96,"k":4,"properties":["P1"]}`
	for _, ts := range fleet {
		if status := postJSON(t, ts.URL+"/v1/build", `{"constraint":"kdiamond","n":96,"k":4}`, nil); status != 200 {
			t.Fatalf("warm build: status %d", status)
		}
	}

	before := obs.Counters()
	const clients = 64
	var wg sync.WaitGroup
	var cachedCount, okCount atomic.Int64
	for i := 0; i < clients; i++ {
		ts := fleet[i%len(fleet)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp VerifyResponse
			if status := postJSON(t, ts.URL+"/v1/verify", body, &resp); status == 200 {
				okCount.Add(1)
			}
			if resp.Cached {
				cachedCount.Add(1)
			}
		}()
	}
	wg.Wait()
	after := obs.Counters()

	if okCount.Load() != clients {
		t.Fatalf("%d/%d requests succeeded", okCount.Load(), clients)
	}
	if runs := after["check.verify.runs"] - before["check.verify.runs"]; runs != 1 {
		t.Fatalf("fleet ran %d verification campaigns for %d identical requests, want exactly 1", runs, clients)
	}
	// Exactly one lease was won fleet-wide; 63 of 64 requests coalesced
	// (in-process) or adopted (cross-process), so they report cached=true.
	if acq := after["store.lease.acquired"] - before["store.lease.acquired"]; acq != 1 {
		t.Fatalf("store.lease.acquired moved by %d, want 1", acq)
	}
	if cachedCount.Load() != clients-1 {
		t.Fatalf("%d/%d requests reported cached=true, want %d", cachedCount.Load(), clients, clients-1)
	}
	// The value reached the store, so a THIRD instance — a cold restart —
	// replays it without any campaign.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("store is empty after the burst; the report was never persisted")
	}
	restarted := httptest.NewServer(New(Options{CacheSize: 16, Store: st}).Handler())
	defer restarted.Close()
	preRuns := obs.Counters()["check.verify.runs"]
	var replay VerifyResponse
	if status := postJSON(t, restarted.URL+"/v1/verify", body, &replay); status != 200 {
		t.Fatalf("replay status %d", status)
	}
	if !replay.Cached {
		t.Fatal("restarted instance must answer cached=true from the store")
	}
	if replay.Report == nil || !replay.Report.KNodeConnected {
		t.Fatalf("replayed report is wrong: %+v", replay)
	}
	if runs := obs.Counters()["check.verify.runs"] - preRuns; runs != 0 {
		t.Fatalf("replay ran %d campaigns, want 0", runs)
	}
}

// TestCrossProcessDistinctKeysDontContend pins that the lease is per-key:
// different keys on different instances never wait on each other.
func TestCrossProcessDistinctKeysDontContend(t *testing.T) {
	dir := t.TempDir()
	fleet := newFleet(t, dir, 2, Options{CacheSize: 16})
	before := obs.Counters()
	var wg sync.WaitGroup
	for i, ts := range fleet {
		n := 14 + 7*i // distinct graphs
		url := ts.URL
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"constraint":"ktree","n":%d,"k":3}`, n)
			var resp VerifyResponse
			if status := postJSON(t, url+"/v1/verify", body, &resp); status != 200 || resp.Cached {
				t.Errorf("n=%d: status=%d cached=%t, want fresh 200", n, status, resp.Cached)
			}
		}()
	}
	wg.Wait()
	after := obs.Counters()
	if runs := after["check.verify.runs"] - before["check.verify.runs"]; runs != 2 {
		t.Fatalf("ran %d campaigns for 2 distinct keys, want 2", runs)
	}
	if waits := after["store.lease.waits"] - before["store.lease.waits"]; waits != 0 {
		t.Fatalf("distinct keys waited on each other %d times", waits)
	}
}

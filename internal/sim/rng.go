// Package sim provides the deterministic simulation substrate shared by the
// flooding and overlay experiments: a seedable random number generator with
// reproducible streams and a discrete-event queue with a stable tie-break.
//
// Everything here is deliberately independent of wall-clock time and of
// math/rand's global state so that every experiment in this repository is
// reproducible bit for bit from its seed.
package sim

import "time"

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, passes
// BigCrush, and — unlike math/rand's global functions — is explicit about
// its state, so two simulations with the same seed always agree.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0 (a programming
// error at the call site, matching math/rand semantics).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= -bound%bound { // lo >= (2^64 - bound) mod bound
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns m distinct values drawn uniformly from [0, n). It panics
// if m > n.
func (r *RNG) Sample(n, m int) []int {
	if m > n {
		panic("sim: Sample with m > n")
	}
	p := r.Perm(n)
	return p[:m]
}

// Split returns a new generator derived from this one, for independent
// substreams (e.g. one per simulated node).
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// Duration returns a uniform duration in [min, max]. A degenerate range
// (max <= min) returns min, so callers can pass an unset upper bound.
func (r *RNG) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(r.Intn(int(max-min)+1))
}

// Jitter scales d by a uniform factor in [1-frac, 1+frac] — the standard
// decorrelation of retransmission backoffs so that peers sharing a seed do
// not fire in lockstep. frac <= 0 or d <= 0 returns d unchanged.
func (r *RNG) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 - frac + 2*frac*r.Float64()
	return time.Duration(float64(d) * f)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

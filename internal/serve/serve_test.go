package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

func TestMain(m *testing.M) {
	// Counter assertions need the sink on; individual tests measure deltas
	// so they stay independent of ordering. Tracing is on too, so every
	// test exercises the request middleware and span plumbing under load.
	obs.Enable()
	trace.Enable()
	m.Run()
}

// --- cache -----------------------------------------------------------------

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Put("c", 3) // "b" is now the oldest: touching "a" promoted it
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
}

func TestLRUZeroCapacityDisabled(t *testing.T) {
	c := newLRU(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache must never hit")
	}
}

// --- singleflight ----------------------------------------------------------

// waitForWaiters blocks until exactly n requests are attached to the flight
// under key (whitebox: reads the group's refcount).
func waitForWaiters(t *testing.T, g *flightGroup, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		f := g.flights[key]
		attached := 0
		if f != nil {
			attached = f.waiters
		}
		g.mu.Unlock()
		if attached == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %q has %d waiters, want %d", key, attached, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	g := newFlightGroup(context.Background())
	var runs atomic.Int64
	release := make(chan struct{})

	const callers = 32
	var wg sync.WaitGroup
	results := make([]any, callers)
	sharedCount := atomic.Int64{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				runs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// The flight stays open until release, so every caller must end up
	// attached to it before we let the function finish.
	waitForWaiters(t, g, "k", callers)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != callers-1 {
		t.Fatalf("%d calls were shared, want %d", got, callers-1)
	}
	for i, v := range results {
		if v.(int) != 42 {
			t.Fatalf("caller %d got %v, want 42", i, v)
		}
	}
}

func TestFlightCancelsWhenLastWaiterLeaves(t *testing.T) {
	g := newFlightGroup(context.Background())
	canceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err, _ := g.Do(ctx, "k", func(runCtx context.Context) (any, error) {
		<-runCtx.Done()
		close(canceled)
		return nil, runCtx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation context was not canceled after the only waiter left")
	}
}

func TestFlightSurvivesLeaderAbandonment(t *testing.T) {
	g := newFlightGroup(context.Background())
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := g.Do(leaderCtx, "k", func(runCtx context.Context) (any, error) {
			close(started)
			select {
			case <-release:
				return "done", nil
			case <-runCtx.Done():
				return nil, runCtx.Err()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()

	<-started
	// Second caller joins the in-flight computation...
	var follower sync.WaitGroup
	follower.Add(1)
	var followerVal any
	var followerErr error
	go func() {
		defer follower.Done()
		followerVal, followerErr, _ = g.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("follower must join the existing flight, not start a new one")
			return nil, nil
		})
	}()
	waitForWaiters(t, g, "k", 2)
	// ...then the leader walks away. The computation must keep running
	// because the follower is still attached.
	cancelLeader()
	wg.Wait()
	close(release)
	follower.Wait()

	if followerErr != nil {
		t.Fatalf("follower err = %v", followerErr)
	}
	if followerVal.(string) != "done" {
		t.Fatalf("follower got %v, want done", followerVal)
	}
}

// --- HTTP helpers ----------------------------------------------------------

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// --- endpoints -------------------------------------------------------------

func TestBuildEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var resp BuildResponse
	status := postJSON(t, ts.URL+"/v1/build", `{"constraint":"kdiamond","n":20,"k":3}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if resp.Cached {
		t.Fatal("first build must not be served from cache")
	}
	if resp.Graph == nil || resp.Graph.Order() != 20 {
		t.Fatalf("graph order = %v, want 20", resp.Graph)
	}
	if resp.Edges != resp.Graph.Size() {
		t.Fatalf("edges = %d, graph has %d", resp.Edges, resp.Graph.Size())
	}

	var again BuildResponse
	postJSON(t, ts.URL+"/v1/build", `{"constraint":"kdiamond","n":20,"k":3}`, &again)
	if !again.Cached {
		t.Fatal("second identical build must hit the cache")
	}
}

func TestBuildSeedVariant(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var canonical, variant BuildResponse
	postJSON(t, ts.URL+"/v1/build", `{"constraint":"ktree","n":20,"k":3}`, &canonical)
	status := postJSON(t, ts.URL+"/v1/build", `{"constraint":"ktree","n":20,"k":3,"seed":7}`, &variant)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if variant.Cached {
		t.Fatal("seeded variant must not reuse the canonical cache slot")
	}
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var resp VerifyResponse
	status := postJSON(t, ts.URL+"/v1/verify", `{"constraint":"ktree","n":21,"k":3}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !resp.IsLHG {
		t.Fatalf("K-TREE(21,3) must verify as an LHG: %+v", resp.Report)
	}
	if resp.Report.NodeConnectivity != 3 || resp.Report.EdgeConnectivity != 3 {
		t.Fatalf("connectivity = (%d,%d), want (3,3)",
			resp.Report.NodeConnectivity, resp.Report.EdgeConnectivity)
	}

	var again VerifyResponse
	postJSON(t, ts.URL+"/v1/verify", `{"constraint":"ktree","n":21,"k":3}`, &again)
	if !again.Cached {
		t.Fatal("second identical verify must hit the cache")
	}
}

func TestVerifyPropertySubset(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var resp VerifyResponse
	status := postJSON(t, ts.URL+"/v1/verify",
		`{"constraint":"kdiamond","n":20,"k":3,"properties":["P1"]}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !resp.Report.KNodeConnected {
		t.Fatal("P1 must hold on K-DIAMOND(20,3)")
	}
	if resp.Report.LinkMinimal {
		t.Fatal("P3 was not requested; its field must stay zero")
	}

	if status := postJSON(t, ts.URL+"/v1/verify",
		`{"constraint":"kdiamond","n":20,"k":3,"properties":["P9"]}`, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown property: status = %d, want 400", status)
	}
}

func TestFloodEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var resp FloodResponse
	status := postJSON(t, ts.URL+"/v1/flood",
		`{"constraint":"kdiamond","n":20,"k":4,"source":0,"failures":{"Nodes":[2,5,9]}}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !resp.Result.Complete {
		t.Fatalf("flood under f=3 < k=4 failures must reach every alive node: %v", resp.Result)
	}
	if resp.Result.Alive != 17 {
		t.Fatalf("alive = %d, want 17", resp.Result.Alive)
	}

	if status := postJSON(t, ts.URL+"/v1/flood",
		`{"constraint":"kdiamond","n":20,"k":4,"source":99}`, nil); status != http.StatusBadRequest {
		t.Fatalf("out-of-range source: status = %d, want 400", status)
	}
}

func TestConstraintsEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/constraints")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Constraints []ConstraintInfo `json:"constraints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Constraints) != 4 {
		t.Fatalf("got %d constraints, want 4", len(out.Constraints))
	}
	variants := 0
	for _, c := range out.Constraints {
		if c.Variants {
			variants++
		}
	}
	if variants != 2 {
		t.Fatalf("%d constraints advertise variants, want 2 (ktree, kdiamond)", variants)
	}

	if status := postJSON(t, ts.URL+"/v1/constraints", `{}`, nil); status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/constraints: status = %d, want 405", status)
	}
}

func TestErrorMapping(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"bad json", "/v1/build", `{"constraint":`, http.StatusBadRequest},
		{"unknown field", "/v1/build", `{"constraint":"ktree","n":21,"k":3,"bogus":1}`, http.StatusBadRequest},
		{"unknown constraint", "/v1/build", `{"constraint":"petersen","n":10,"k":3}`, http.StatusBadRequest},
		{"non-positive n", "/v1/build", `{"constraint":"ktree","n":0,"k":3}`, http.StatusBadRequest},
		{"not constructible", "/v1/build", `{"constraint":"ktree","n":5,"k":3}`, http.StatusUnprocessableEntity},
		{"seed on harary", "/v1/build", `{"constraint":"harary","n":20,"k":3,"seed":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorEnvelope
			if status := postJSON(t, ts.URL+tc.url, tc.body, &e); status != tc.want {
				t.Fatalf("status = %d, want %d (error %+v)", status, tc.want, e.Error)
			}
			if e.Error.Message == "" || e.Error.Code == "" {
				t.Fatal("error envelopes must carry a code and a message")
			}
		})
	}
}

func TestVerifyTimeoutMapsTo504(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16, Timeout: time.Nanosecond})
	status := postJSON(t, ts.URL+"/v1/verify", `{"constraint":"kdiamond","n":120,"k":4}`, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
}

// TestVerifyBurstRunsOneCampaign is the tentpole acceptance check: 64
// concurrent identical verify requests execute exactly one verification
// campaign. Whether a given request coalesced into the in-flight campaign
// or arrived after it finished and hit the LRU, the kernel-side campaign
// counter must move by exactly one.
func TestVerifyBurstRunsOneCampaign(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	// Warm the graph cache first: serve.flight.coalesced is shared across
	// endpoints, so build-flight coalescing inside the burst would
	// otherwise leak into the verify-side arithmetic below.
	if status := postJSON(t, ts.URL+"/v1/build", `{"constraint":"kdiamond","n":100,"k":4}`, nil); status != http.StatusOK {
		t.Fatalf("warm build: status %d", status)
	}
	before := obs.Counters()

	const clients = 64
	body := `{"constraint":"kdiamond","n":100,"k":4,"properties":["P1"]}`
	var wg sync.WaitGroup
	var cachedCount, okCount atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp VerifyResponse
			if status := postJSON(t, ts.URL+"/v1/verify", body, &resp); status == http.StatusOK {
				okCount.Add(1)
				if resp.Cached {
					cachedCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	after := obs.Counters()
	if ok := okCount.Load(); ok != clients {
		t.Fatalf("%d/%d requests succeeded", ok, clients)
	}
	campaigns := after["check.verify.runs"] - before["check.verify.runs"]
	if campaigns != 1 {
		t.Fatalf("burst of %d identical verifies ran %d campaigns, want exactly 1", clients, campaigns)
	}
	if got := cachedCount.Load(); got != clients-1 {
		t.Fatalf("%d requests reported cached, want %d (all but the leader)", got, clients-1)
	}
	served := (after["serve.verify.cache.hits"] - before["serve.verify.cache.hits"]) +
		(after["serve.flight.coalesced"] - before["serve.flight.coalesced"])
	if served != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", served, clients-1)
	}
}

// TestClientDisconnectCancelsCampaign checks the end of the cancellation
// chain: when the only client of an expensive verify goes away, the flight
// context is cancelled and the campaign aborts instead of running to
// completion in the background.
func TestClientDisconnectCancelsCampaign(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	ctx, cancel := context.WithCancel(context.Background())
	// The instance must outlive the 50ms head start below even on the
	// arena-era probe sweeps (n=400 now verifies in milliseconds).
	body := `{"constraint":"kdiamond","n":4096,"k":6}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/verify", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the campaign start
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}

	// The server must stay fully responsive afterwards: the abandoned
	// flight unmaps itself, and fresh requests get fresh computations.
	var resp VerifyResponse
	status := postJSON(t, ts.URL+"/v1/verify",
		`{"constraint":"kdiamond","n":20,"k":3,"properties":["P1"]}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("server unresponsive after client disconnect: status %d", status)
	}
}

func TestWorkersClamp(t *testing.T) {
	for _, tc := range []struct{ asked, budget, want int }{
		{0, 0, 0}, {0, 4, 4}, {2, 4, 2}, {8, 4, 4}, {8, 0, 8}, {-1, 3, 3},
	} {
		if got := clampRequestWorkers(tc.asked, tc.budget); got != tc.want {
			t.Errorf("clampRequestWorkers(%d, %d) = %d, want %d", tc.asked, tc.budget, got, tc.want)
		}
	}
}

func TestCacheKeysDistinguishParameters(t *testing.T) {
	br := func(c string, n, k int, seed *uint64) *BuildRequest {
		return &BuildRequest{Constraint: c, N: n, K: k, Seed: seed}
	}
	seed := uint64(7)
	keys := map[string]bool{}
	for _, r := range []*BuildRequest{
		br("ktree", 21, 3, nil),
		br("ktree", 22, 3, nil),
		br("ktree", 21, 4, nil),
		br("kdiamond", 21, 3, nil),
		br("ktree", 21, 3, &seed),
	} {
		c, err := r.validate()
		if err != nil {
			t.Fatal(err)
		}
		k := r.graphKey(c)
		if keys[k] {
			t.Fatalf("duplicate cache key %q", k)
		}
		keys[k] = true
	}
}

func ExampleServer() {
	ts := httptest.NewServer(New(Options{CacheSize: 16}).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json",
		bytes.NewBufferString(`{"constraint":"ktree","n":21,"k":3}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out VerifyResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	fmt.Printf("is_lhg=%t kappa=%d\n", out.IsLHG, out.Report.NodeConnectivity)
	// Output: is_lhg=true kappa=3
}

package flow

import (
	"context"
	"fmt"
	"testing"

	"lhg/internal/graph"
)

// Ablation benches for the design choices called out in DESIGN.md:
//
//  1. Esfahanian–Hakimi pair selection vs the naive all-non-adjacent-pairs
//     sweep for global vertex connectivity.
//  2. Early-exit (bounded) max flow vs exact flow for threshold queries.

var benchSink int

// naiveVertexConnectivity computes κ by running a max flow for every
// non-adjacent pair — the textbook definition, quadratic in n.
func naiveVertexConnectivity(g *graph.Graph) int {
	n := g.Order()
	if n < 2 || !g.Connected() {
		return 0
	}
	best := n - 1
	found := false
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if g.HasEdge(s, t) {
				continue
			}
			found = true
			if f := stVertexFlow(context.Background(), g, s, t, best); f < best {
				best = f
			}
		}
	}
	if !found {
		return n - 1 // complete graph
	}
	return best
}

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	// 4-regular circulant: connected, κ=4, plenty of non-adjacent pairs.
	bld := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		bld.MustAddEdge(v, (v+1)%n)
		bld.MustAddEdge(v, (v+2)%n)
	}
	return bld.Freeze()
}

func BenchmarkVertexConnectivityEsfahanianHakimi(b *testing.B) {
	for _, n := range []int{32, 96} {
		g := benchGraph(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = VertexConnectivity(g)
			}
		})
	}
}

func BenchmarkVertexConnectivityNaiveAllPairs(b *testing.B) {
	for _, n := range []int{32, 96} {
		g := benchGraph(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = naiveVertexConnectivity(g)
			}
		})
	}
}

func BenchmarkThresholdEarlyExit(b *testing.B) {
	g := benchGraph(b, 128)
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !IsKNodeConnected(g, 4) {
				b.Fatal("graph must be 4-connected")
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if VertexConnectivity(g) < 4 {
				b.Fatal("graph must be 4-connected")
			}
		}
	})
}

// TestNaiveMatchesEsfahanianHakimi keeps the ablation baseline honest.
func TestNaiveMatchesEsfahanianHakimi(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g := randomGraph(10, seed)
		if got, want := naiveVertexConnectivity(g), VertexConnectivity(g); got != want {
			t.Fatalf("seed %d: naive κ=%d, EH κ=%d", seed, got, want)
		}
	}
}

package flow

import (
	"math/bits"
	"math/rand"
	"testing"

	"lhg/internal/graph"
)

// Brute-force oracle for the restricted edge connectivity λ′: enumerate
// every bipartition (A, B) of the vertex set, keep the ones in which every
// vertex has at least one neighbor on its own side (no side isolates a
// node), and take the minimum crossing-edge count; -1 when no such
// bipartition exists. This is the textbook definition, sharing no code
// with the pairwise-flow reduction under test.
func oracleRestricted(g *graph.Graph) int {
	n := g.Order()
	if n < 2 || n > 20 {
		return -1
	}
	edges := g.Edges()
	best := -1
	for mask := 1; mask < 1<<(n-1); mask++ { // vertex n-1 stays on side 0: halves the space
		restricted := true
		for v := 0; v < n && restricted; v++ {
			side := mask >> v & 1
			ok := false
			for _, w := range g.Neighbors(v) {
				ws := 0
				if w < n-1 {
					ws = mask >> w & 1
				}
				if ws == side {
					ok = true
					break
				}
			}
			if !ok {
				restricted = false
			}
		}
		if !restricted {
			continue
		}
		cut := 0
		for _, e := range edges {
			us, vs := 0, 0
			if e.U < n-1 {
				us = mask >> e.U & 1
			}
			if e.V < n-1 {
				vs = mask >> e.V & 1
			}
			if us != vs {
				cut++
			}
		}
		if best < 0 || cut < best {
			best = cut
		}
	}
	return best
}

func fixtureGraphN(n int, build func(b *graph.Builder)) *graph.Graph {
	b := graph.NewBuilder(n)
	build(b)
	return b.Freeze()
}

// TestRestrictedEdgeConnectivityFixtures pins λ′ on the canonical shapes:
// cycles (λ′ = 2), cliques (λ′ = 2k-2 for K_k, k ≥ 4), stars and
// triangles (undefined), and graphs with isolated vertices (undefined).
func TestRestrictedEdgeConnectivityFixtures(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C4", fixtureGraphN(4, func(b *graph.Builder) {
			for v := 0; v < 4; v++ {
				b.MustAddEdge(v, (v+1)%4)
			}
		}), 2},
		{"C7", fixtureGraphN(7, func(b *graph.Builder) {
			for v := 0; v < 7; v++ {
				b.MustAddEdge(v, (v+1)%7)
			}
		}), 2},
		{"K4", fixtureGraphN(4, func(b *graph.Builder) {
			for u := 0; u < 4; u++ {
				for v := u + 1; v < 4; v++ {
					b.MustAddEdge(u, v)
				}
			}
		}), 4},
		{"K5", fixtureGraphN(5, func(b *graph.Builder) {
			for u := 0; u < 5; u++ {
				for v := u + 1; v < 5; v++ {
					b.MustAddEdge(u, v)
				}
			}
		}), 6},
		{"star", fixtureGraphN(6, func(b *graph.Builder) {
			for v := 1; v < 6; v++ {
				b.MustAddEdge(0, v)
			}
		}), -1},
		{"triangle", fixtureGraphN(3, func(b *graph.Builder) {
			b.MustAddEdge(0, 1)
			b.MustAddEdge(1, 2)
			b.MustAddEdge(0, 2)
		}), -1},
		{"isolated-vertex", fixtureGraphN(5, func(b *graph.Builder) {
			for v := 0; v < 4; v++ {
				b.MustAddEdge(v, (v+1)%4)
			}
		}), -1},
		{"single-edge", fixtureGraphN(2, func(b *graph.Builder) {
			b.MustAddEdge(0, 1)
		}), -1},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			if got := RestrictedEdgeConnectivity(tc.g, workers); got != tc.want {
				t.Errorf("%s workers=%d: λ' = %d, want %d", tc.name, workers, got, tc.want)
			}
		}
		if got := oracleRestricted(tc.g); got != tc.want {
			t.Errorf("%s: oracle disagrees with the fixture: %d vs %d (fix the test)", tc.name, got, tc.want)
		}
	}
}

// TestRestrictedEdgeConnectivityAgainstOracle sweeps seeded random graphs
// (n ≤ 10, all densities, disconnected and irregular shapes included) and
// asserts the pairwise-flow reduction equals the bipartition definition,
// serial and parallel.
func TestRestrictedEdgeConnectivityAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7) // 4..10
		percent := 15 + rng.Intn(75)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(100) < percent {
					b.MustAddEdge(u, v)
				}
			}
		}
		g := b.Freeze()
		want := oracleRestricted(g)
		for _, workers := range []int{1, 4} {
			if got := RestrictedEdgeConnectivity(g, workers); got != want {
				t.Fatalf("seed=%d n=%d p=%d workers=%d: λ' = %d, oracle %d",
					seed, n, percent, workers, got, want)
			}
		}
	}
}

// oracleSuper decides super edge connectivity by definition: the graph is
// connected, λ ≥ 1, and every bipartition achieving the minimum cut value
// isolates exactly one vertex.
func oracleSuper(g *graph.Graph) bool {
	n := g.Order()
	edges := g.Edges()
	if n < 2 || !g.Connected() || len(edges) == 0 {
		return false
	}
	lambda := -1
	super := true
	for mask := 1; mask < 1<<(n-1); mask++ {
		cut := 0
		for _, e := range edges {
			us, vs := 0, 0
			if e.U < n-1 {
				us = mask >> e.U & 1
			}
			if e.V < n-1 {
				vs = mask >> e.V & 1
			}
			if us != vs {
				cut++
			}
		}
		size := bits.OnesCount(uint(mask)) // side-1 size; side 0 holds vertex n-1
		small := size
		if n-size < small {
			small = n - size
		}
		switch {
		case lambda < 0 || cut < lambda:
			lambda = cut
			super = small == 1
		case cut == lambda && small != 1:
			super = false
		}
	}
	return lambda >= 1 && super
}

// TestSuperEdgeFromRestricted checks the derivation the check layer uses —
// super-λ ⟺ λ ≥ 1 ∧ λ = δ ∧ (λ′ undefined ∨ λ′ > λ) — against the
// enumerate-every-cut oracle on seeded random graphs.
func TestSuperEdgeFromRestricted(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 4 + rng.Intn(6) // 4..9
		percent := 25 + rng.Intn(70)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(100) < percent {
					b.MustAddEdge(u, v)
				}
			}
		}
		g := b.Freeze()
		if !g.Connected() {
			continue
		}
		lambda := EdgeConnectivity(g)
		minDeg, _ := g.MinDegree()
		lp := RestrictedEdgeConnectivity(g, 1)
		derived := lambda >= 1 && lambda == minDeg && (lp == -1 || lp > lambda)
		if want := oracleSuper(g); derived != want {
			t.Fatalf("seed=%d n=%d p=%d: derived super=%t (λ=%d δ=%d λ'=%d), oracle %t",
				seed, n, percent, derived, lambda, minDeg, lp, want)
		}
	}
}

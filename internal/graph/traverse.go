package graph

import "context"

// BFSFrom runs a breadth-first search from src and returns the distance (in
// hops) to every node; unreachable nodes get -1. If src is out of range the
// result is all -1. The returned slice is freshly allocated; internal
// callers that need allocation-free probes use the pooled scratch instead.
func (g *Graph) BFSFrom(src int) []int {
	n := g.Order()
	dist := make([]int, n)
	s := getScratch(n)
	g.bfsInto(src, s)
	for i, d := range s.dist {
		dist[i] = int(d)
	}
	putScratch(s)
	return dist
}

// ShortestPath returns one shortest path from src to dst as a node sequence
// including both endpoints, or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	n := g.Order()
	if src < 0 || dst < 0 || src >= n || dst >= n {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, w := range g.row(u) {
			v := int(w)
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					return buildPath(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func buildPath(parent []int, src, dst int) []int {
	var rev []int
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Connected reports whether g is connected. Graphs with fewer than two
// nodes are connected by convention. It allocates nothing in steady state.
func (g *Graph) Connected() bool {
	n := g.Order()
	if n <= 1 {
		return true
	}
	s := getScratch(n)
	reached := g.bfsInto(0, s)
	putScratch(s)
	return reached == n
}

// ConnectedIgnoring reports whether the subgraph induced by removing the
// nodes in `removed` (a boolean mask indexed by node) is connected. A
// subgraph with fewer than two surviving nodes is connected by convention.
// It allocates nothing in steady state.
func (g *Graph) ConnectedIgnoring(removed []bool) bool {
	n := g.Order()
	start := -1
	alive := 0
	for v := 0; v < n; v++ {
		if v < len(removed) && removed[v] {
			continue
		}
		alive++
		if start < 0 {
			start = v
		}
	}
	if alive <= 1 {
		return true
	}
	s := getScratch(n)
	// Mark removed nodes visited up front so the BFS never enters them.
	for v := 0; v < n && v < len(removed); v++ {
		if removed[v] {
			s.dist[v] = 0
		}
	}
	s.dist[start] = 0
	s.queue = append(s.queue[:0], int32(start))
	count := 1
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		for _, v := range g.row(int(u)) {
			if s.dist[v] < 0 {
				s.dist[v] = 0
				count++
				s.queue = append(s.queue, v)
			}
		}
	}
	putScratch(s)
	return count == alive
}

// Components returns the connected components of g, each as a sorted node
// slice, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	n := g.Order()
	s := getScratch(n)
	defer putScratch(s)
	var comps [][]int
	for root := 0; root < n; root++ {
		if s.dist[root] >= 0 {
			continue
		}
		s.dist[root] = 0
		s.queue = append(s.queue[:0], int32(root))
		var comp []int
		for qi := 0; qi < len(s.queue); qi++ {
			u := s.queue[qi]
			comp = append(comp, int(u))
			for _, v := range g.row(int(u)) {
				if s.dist[v] < 0 {
					s.dist[v] = 0
					s.queue = append(s.queue, v)
				}
			}
		}
		comps = append(comps, sortedCopy(comp))
	}
	return comps
}

// Eccentricity returns the greatest BFS distance from v to any reachable
// node, and whether the whole graph is reachable from v.
func (g *Graph) Eccentricity(v int) (ecc int, wholeGraph bool) {
	n := g.Order()
	s := getScratch(n)
	reached := g.bfsInto(v, s)
	for _, d := range s.dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	putScratch(s)
	return ecc, reached == n
}

// Diameter returns the longest shortest path in g. It returns -1 when g is
// disconnected or has no nodes.
func (g *Graph) Diameter() int { return g.diameter(1) }

// DiameterParallel computes Diameter with the per-source BFS sweeps fanned
// across `workers` goroutines (values < 2 fall back to the serial path).
// The graph is frozen, so the workers share it without synchronization.
func (g *Graph) DiameterParallel(workers int) int { return g.diameter(workers) }

func (g *Graph) diameter(workers int) int {
	n := g.Order()
	if n == 0 {
		return -1
	}
	diam, _, connected := g.sweepAllSources(workers)
	if !connected {
		return -1
	}
	return diam
}

// AvgPathLength returns the mean shortest-path length over all ordered node
// pairs, or -1 when g is disconnected or has fewer than two nodes.
func (g *Graph) AvgPathLength() float64 {
	n := g.Order()
	if n < 2 {
		return -1
	}
	_, total, connected := g.sweepAllSources(1)
	if !connected {
		return -1
	}
	return float64(total) / float64(int64(n)*int64(n-1))
}

// DistanceStats runs one all-sources BFS sweep (optionally parallel) and
// returns the diameter and average path length together — the P4 inputs —
// so verification pays for the sweep once instead of twice. Both are -1
// when g is disconnected; the diameter alone is -1 on the empty graph.
func (g *Graph) DistanceStats(workers int) (diam int, avg float64) {
	n := g.Order()
	if n == 0 {
		return -1, -1
	}
	diam, total, connected := g.sweepAllSources(workers)
	if !connected {
		return -1, -1
	}
	if n < 2 {
		return diam, -1
	}
	return diam, float64(total) / float64(int64(n)*int64(n-1))
}

// DistanceStatsCtx is DistanceStats polling ctx between per-source BFS
// sweeps (each source costs one O(n+m) BFS, so cancellation lands within
// one BFS of the signal). A canceled sweep returns ctx.Err() and no
// values.
func (g *Graph) DistanceStatsCtx(ctx context.Context, workers int) (diam int, avg float64, err error) {
	n := g.Order()
	if n == 0 {
		return -1, -1, ctx.Err()
	}
	diam, total, connected := g.sweepAllSourcesDone(ctx.Done(), workers)
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if !connected {
		return -1, -1, nil
	}
	if n < 2 {
		return diam, -1, nil
	}
	return diam, float64(total) / float64(int64(n)*int64(n-1)), nil
}

// sweepAllSources BFSes from every node, accumulating the maximum distance
// and the sum of all distances, and reports whether every BFS reached the
// whole graph. Workers < 2 run serially on pooled scratch.
func (g *Graph) sweepAllSources(workers int) (maxDist int, total int64, connected bool) {
	return g.sweepAllSourcesDone(nil, workers)
}

// sweepAllSourcesDone is sweepAllSources with an optional cancellation
// signal polled between sources. A canceled sweep returns early with
// whatever it accumulated; the caller distinguishes cancellation from a
// disconnection by checking its context.
func (g *Graph) sweepAllSourcesDone(done <-chan struct{}, workers int) (maxDist int, total int64, connected bool) {
	n := g.Order()
	if workers < 2 {
		s := getScratch(n)
		defer putScratch(s)
		connected = true
		for v := 0; v < n; v++ {
			if signaled(done) {
				return 0, 0, false
			}
			for i := range s.dist {
				s.dist[i] = -1
			}
			if g.bfsInto(v, s) != n {
				return 0, 0, false
			}
			for _, d := range s.dist {
				if int(d) > maxDist {
					maxDist = int(d)
				}
				total += int64(d)
			}
		}
		return maxDist, total, connected
	}
	results := parallelSweep(g, done, workers)
	connected = true
	for _, r := range results {
		if !r.connected {
			return 0, 0, false
		}
		if r.maxDist > maxDist {
			maxDist = r.maxDist
		}
		total += r.total
	}
	return maxDist, total, connected
}

// signaled polls an optional done channel without blocking.
func signaled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from NewCounter so they appear in reports.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored so a
// counter can never decrease).
func (c *Counter) Add(n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a last-value metric (worker counts, sizes). Set records the
// most recent value; SetMax keeps the high-water mark.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records v as the current value.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket distribution of int64 observations. Bucket
// bounds are set at registration and never change, so Observe touches only
// atomics: a binary search over a read-only bounds slice, one bucket add,
// and the count/sum pair.
type Histogram struct {
	name   string
	bounds []int64 // upper bounds, ascending; implicit +Inf bucket after
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// snapshot returns the per-bucket cumulative counts aligned with bounds
// plus the +Inf bucket.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`  // upper bounds; final bucket is +Inf
	Buckets []int64 `json:"buckets"` // len(Bounds)+1 per-bucket counts
}

// Registry holds named metrics. The process-wide Default registry is what
// NewCounter/NewGauge/NewHistogram/NewTimer register into and what the
// exporters read.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

// NewCounter registers (or returns the existing) counter with this name in
// the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or returns the existing) gauge with this name in the
// Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers a histogram with the given ascending upper bucket
// bounds (an implicit +Inf bucket is appended) in the Default registry.
func NewHistogram(name string, bounds ...int64) *Histogram {
	return Default.Histogram(name, bounds...)
}

// NewTimer registers (or returns the existing) timer in the Default
// registry.
func NewTimer(name string) *Timer { return Default.Timer(name) }

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if new. Re-registering with different bounds panics:
// bounds are part of the metric's identity.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Timer returns the timer registered under name, creating it if new.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t := &Timer{name: name}
	r.timers[name] = t
	return t
}

// Reset zeroes every metric in the registry. Registered handles stay valid
// (instrumented packages hold them in package vars), only the accumulated
// values are cleared. Intended for differential tests and between-run CLI
// hygiene, not for hot paths.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.counts {
			h.counts[i].Store(0)
		}
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.ns.Store(0)
	}
}

// Reset zeroes every metric in the Default registry.
func Reset() { Default.Reset() }

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lhg"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Live progress streaming (Server-Sent Events).
//
// GET /v1/verify?stream&constraint=C&n=N&k=K[&seed=S][&workers=W]
// [&properties=P1,P2] opens a text/event-stream of one verification
// campaign. The first watcher of a given verify key launches the
// campaign; every later watcher — up to the whole burst — subscribes to
// the SAME feed, and the campaign itself coalesces with any concurrent
// POST /v1/verify through the ordinary singleflight, so 64 streaming
// clients still cost exactly one verification. The stream carries:
//
//	start       {key, trace_id}           once, first event
//	span-start  trace.Event               per span (tracing enabled)
//	span-end    trace.Event               per span (tracing enabled)
//	point       trace.Event               probe progress, cache decisions
//	result      VerifyResponse            on success
//	error       {error}                   on failure
//	done        {}                        always last
//
// plus `: hb` comment heartbeats every Options.StreamHeartbeat. Closing
// the connection unsubscribes; when the LAST watcher of an unfinished
// campaign disconnects, the campaign is cancelled through the same
// refcounted path a coalesced POST uses.
//
// GET /v1/reconfigure?stream&session=NAME watches a live topology
// session: every reconfigure campaign of the session publishes
// epoch-start / (span events) / epoch-end|epoch-error while the stream
// stays open across epochs.
var (
	mStreamOpened  = obs.NewCounter("serve.stream.opened")
	mStreamClosed  = obs.NewCounter("serve.stream.closed")
	mStreamEvents  = obs.NewCounter("serve.stream.events")
	mStreamDropped = obs.NewCounter("serve.stream.dropped")
	gStreamSubs    = obs.NewGauge("serve.stream.subscribers")

	streamSubs atomic.Int64 // live subscriber count behind the gauge
)

// streamEvent is one SSE frame: an event name plus a JSON-encoded body.
type streamEvent struct {
	name string
	data []byte
}

// feed is one broadcast channel of streamEvents with late-join replay.
// Publishing never blocks: a subscriber that stops draining its buffered
// channel loses events (counted), not the campaign.
type feed struct {
	mu         sync.Mutex
	subs       map[chan streamEvent]struct{}
	history    []streamEvent
	historyCap int // 0 disables replay (session feeds)
	closed     bool
	cancel     context.CancelFunc // campaign-owned feeds; nil for session feeds
	onEmpty    func()             // called when the last subscriber leaves
}

func newFeed(historyCap int) *feed {
	return &feed{subs: make(map[chan streamEvent]struct{}), historyCap: historyCap}
}

// publish marshals v and fans the event out to every subscriber.
func (f *feed) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	ev := streamEvent{name: name, data: data}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if f.historyCap > 0 && len(f.history) < f.historyCap {
		f.history = append(f.history, ev)
	}
	mStreamEvents.Inc()
	for ch := range f.subs {
		select {
		case ch <- ev:
		default:
			mStreamDropped.Inc()
		}
	}
}

// traceEmitter adapts the feed to a trace.Emitter: span lifecycle events
// stream under their trace.Event type names.
func (f *feed) traceEmitter() trace.Emitter {
	return func(ev trace.Event) { f.publish(ev.Type, ev) }
}

// close publishes the final done event and detaches every subscriber.
func (f *feed) close() {
	f.publish("done", struct{}{})
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	for ch := range f.subs {
		close(ch)
	}
	f.subs = nil
}

// subscribe registers a new watcher and returns its channel plus the
// replayed history. A closed feed returns ok=false.
func (f *feed) subscribe() (ch chan streamEvent, replay []streamEvent, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, nil, false
	}
	ch = make(chan streamEvent, 256)
	f.subs[ch] = struct{}{}
	return ch, append([]streamEvent(nil), f.history...), true
}

// unsubscribe detaches a watcher. The last watcher to leave an
// unfinished campaign cancels it and fires onEmpty.
func (f *feed) unsubscribe(ch chan streamEvent) {
	f.mu.Lock()
	if _, live := f.subs[ch]; live {
		delete(f.subs, ch)
	}
	last := len(f.subs) == 0 && !f.closed
	cancel, onEmpty := f.cancel, f.onEmpty
	f.mu.Unlock()
	if !last {
		return
	}
	if cancel != nil {
		cancel()
	}
	if onEmpty != nil {
		onEmpty()
	}
}

// parse ---------------------------------------------------------------------

// parseVerifyQuery maps the GET ?stream query parameters onto the same
// VerifyRequest the POST body carries.
func parseVerifyQuery(r *http.Request) (*VerifyRequest, error) {
	q := r.URL.Query()
	req := &VerifyRequest{}
	req.Constraint = q.Get("constraint")
	var err error
	if req.N, err = queryInt(q.Get("n")); err != nil {
		return nil, fmt.Errorf("serve: bad n: %v", err)
	}
	if req.K, err = queryInt(q.Get("k")); err != nil {
		return nil, fmt.Errorf("serve: bad k: %v", err)
	}
	if v := q.Get("workers"); v != "" {
		if req.Workers, err = queryInt(v); err != nil {
			return nil, fmt.Errorf("serve: bad workers: %v", err)
		}
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad seed: %v", err)
		}
		req.Seed = &seed
	}
	if v := q.Get("properties"); v != "" {
		req.Properties = strings.Split(v, ",")
	}
	return req, nil
}

func queryInt(v string) (int, error) {
	if v == "" {
		return 0, fmt.Errorf("missing")
	}
	return strconv.Atoi(v)
}

// handlers ------------------------------------------------------------------

// handleVerifyStream serves GET /v1/verify?stream.
func (s *Server) handleVerifyStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	done := s.track(epVerify)
	req, err := parseVerifyQuery(r)
	if err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	c, err := req.validate()
	if err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	props, err := parseProperties(req.Properties)
	if err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	key := verifyKey(req.graphKey(c), props)
	f := s.verifyFeed(key, c, req, props)
	s.serveStream(w, r, f)
	done(false, start)
}

// verifyFeed returns the live feed for a streamed verify key, launching
// the campaign goroutine when this watcher is the first.
func (s *Server) verifyFeed(key string, c lhg.Constraint, req *VerifyRequest, props lhg.Properties) *feed {
	s.feedMu.Lock()
	if f, ok := s.verifyFeeds[key]; ok {
		s.feedMu.Unlock()
		return f
	}
	f := newFeed(1024)
	ctx, cancel := context.WithCancel(s.base)
	f.cancel = cancel
	s.verifyFeeds[key] = f
	s.feedMu.Unlock()

	go func() {
		defer func() {
			s.feedMu.Lock()
			if s.verifyFeeds[key] == f {
				delete(s.verifyFeeds, key)
			}
			s.feedMu.Unlock()
			f.close()
			cancel()
		}()
		// The campaign's trace feeds the stream: phase spans, worker probe
		// batches and cache decisions arrive as they happen. The emitter is
		// attached after the start event and detached before the root ends,
		// so start stays the first frame and only campaign spans stream.
		ctx, sp := trace.StartRoot(ctx, "verify.stream")
		traceID := ""
		if sp.Live() {
			traceID = sp.TraceID().String()
		}
		f.publish("start", map[string]any{"key": key, "trace_id": traceID})
		defer sp.End()
		if sp.Live() {
			remove := sp.Trace().AddEmitter(f.traceEmitter())
			defer remove()
		}

		g, _, err := s.getGraph(ctx, c, &req.BuildRequest)
		if err != nil {
			f.publish("error", ErrorEnvelope{Error: errorBody(nil, err)})
			return
		}
		workers := clampRequestWorkers(req.Workers, s.workers)
		v, cached, err := s.compute(ctx, epVerify, key, persistVerify, func(runCtx context.Context) (any, error) {
			return lhg.Verify(runCtx, g, req.K, lhg.WithWorkers(workers),
				lhg.WithProperties(props), lhg.WithSparsify(s.sparsify))
		})
		if err != nil {
			f.publish("error", ErrorEnvelope{Error: errorBody(nil, err)})
			return
		}
		report := v.(*lhg.Report)
		f.publish("result", VerifyResponse{
			Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
			Cached: cached, IsLHG: report.IsLHG(), Report: report,
		})
		s.log.InfoContext(ctx, "streamed verify finished",
			"key", key, "cached", cached, "is_lhg", report.IsLHG())
	}()
	return f
}

// handleReconfigureStream serves GET /v1/reconfigure?stream&session=NAME.
func (s *Server) handleReconfigureStream(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if strings.TrimSpace(name) == "" {
		writeError(w, r, badRequest(fmt.Errorf("serve: stream needs a session name")))
		return
	}
	s.sessMu.Lock()
	_, known := s.sessions[name]
	s.sessMu.Unlock()
	if !known {
		writeError(w, r, notFound(fmt.Errorf("serve: unknown session %q (%v)", name, errUnknownSession)))
		return
	}
	f := s.sessionFeed(name, true)
	s.serveStream(w, r, f)
}

// sessionFeed returns the event feed of a topology session, creating it
// when create is set (the subscribe path). The publish path passes
// create=false: an unwatched session has no feed and pays nothing.
func (s *Server) sessionFeed(name string, create bool) *feed {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	f, ok := s.sessFeeds[name]
	if !ok && create {
		f = newFeed(0) // live-only: epochs replay poorly, watchers want "from now"
		f.onEmpty = func() {
			s.feedMu.Lock()
			if s.sessFeeds[name] == f {
				delete(s.sessFeeds, name)
			}
			s.feedMu.Unlock()
		}
		s.sessFeeds[name] = f
	}
	return f
}

// serveStream is the shared SSE writer loop: replay, live events,
// heartbeats, disconnect handling.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, f *feed) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, fmt.Errorf("serve: streaming needs a flushing writer"))
		return
	}
	ch, replay, ok := f.subscribe()
	if !ok {
		// The campaign finished between feed lookup and subscribe; tell
		// the client to re-request (the result is in the cache now).
		writeError(w, r, conflict(fmt.Errorf("serve: stream already completed, retry")))
		return
	}
	mStreamOpened.Inc()
	gStreamSubs.Set(streamSubs.Add(1))
	defer func() {
		f.unsubscribe(ch)
		mStreamClosed.Inc()
		gStreamSubs.Set(streamSubs.Add(-1))
		flusher.Flush()
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	flusher.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // feed closed; the done event was already delivered
			}
			writeSSE(w, ev)
			// Drain whatever is already queued before flushing once.
			for more := true; more; {
				select {
				case ev, open := <-ch:
					if !open {
						flusher.Flush()
						return
					}
					writeSSE(w, ev)
				default:
					more = false
				}
			}
			flusher.Flush()
		case <-hb.C:
			fmt.Fprint(w, ": hb\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.base.Done():
			return
		}
	}
}

// writeSSE renders one event in the text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev streamEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

package check

import (
	"strings"
	"testing"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// withSink resets the metrics registry and enables the sink for one test,
// restoring the disabled default afterwards. Tests that use it share the
// process-global registry and therefore must not run in parallel.
func withSink(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
}

// irregularPetersen is the Petersen graph plus one chord between the
// non-adjacent outer nodes 0 and 2: still κ=λ=3, but Δ=4 ≠ λ, so the
// per-edge P3 sweep cannot short-circuit on regularity.
func irregularPetersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for v := 0; v < 5; v++ {
		b.MustAddEdge(v, (v+1)%5)
		b.MustAddEdge(5+v, 5+(v+2)%5)
		b.MustAddEdge(v, 5+v)
	}
	b.MustAddEdge(0, 2)
	return b.Freeze()
}

// expectedVerifyProbes computes, from first principles and without touching
// the instrumented code paths, the exact number of max-flow probes each
// verification phase must issue on a connected graph:
//
//   - kappa: the Esfahanian–Hakimi reduction probes the min-degree node v
//     against every non-neighbor, plus every non-adjacent pair of v's
//     neighbors — one flow per pair, serial or parallel.
//   - lambda: the Matula shared pass probes the pivot (first member of the
//     deterministic greedy dominating set) against every other member —
//     one flow per non-pivot member.
//   - minimality: per edge, one flow when the masked edge cut already
//     refutes removability, two when the vertex cut must also be checked.
//
// The probe counts (unlike augmenting-path counts or pool traffic) do not
// depend on the early-exit limits, so they are identical for serial and
// parallel runs.
func expectedVerifyProbes(t *testing.T, g *graph.Graph, lambda int) (kappa, lam, min int64) {
	t.Helper()
	if obs.Enabled() {
		t.Fatal("ground truth must be computed with the sink disabled")
	}
	n := g.Order()
	_, v := g.MinDegree()
	isNbr := make([]bool, n)
	nbrs := g.Neighbors(v)
	for _, w := range nbrs {
		isNbr[w] = true
	}
	for u := 0; u < n; u++ {
		if u != v && !isNbr[u] {
			kappa++
		}
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !g.HasEdge(nbrs[i], nbrs[j]) {
				kappa++
			}
		}
	}
	lam = int64(len(g.DominatingSet()) - 1)
	kappaVal := flow.VertexConnectivity(g)
	for _, e := range g.Edges() {
		if d := min2(g.Degree(e.U), g.Degree(e.V)); d <= lambda || d <= kappaVal {
			continue // degree shortcut: the sweep refutes without a flow
		}
		cut, err := flow.EdgeCut(g.WithoutEdge(e.U, e.V), e.U, e.V)
		if err != nil {
			t.Fatal(err)
		}
		if cut < lambda {
			min++ // the edge-cut probe refutes; no vertex probe follows
		} else {
			min += 2
		}
	}
	return kappa, lam, min
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestVerifyMetricsMatchGroundTruth is the differential test behind the
// instrumentation: the probe counters the flow layer publishes during a
// full verification must exactly match the counts derived independently
// from the algorithm's definition, phase by phase.
func TestVerifyMetricsMatchGroundTruth(t *testing.T) {
	g := irregularPetersen()
	obs.Disable()
	kp, lp, mp := expectedVerifyProbes(t, g, 3)
	withSink(t)

	for _, workers := range []int{1, 4} {
		obs.Reset()
		r, err := VerifyParallel(g, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !r.KNodeConnected || !r.KLinkConnected {
			t.Fatalf("workers=%d: expected a 3-connected witness: %s", workers, r)
		}
		if len(r.Phases) != 4 {
			t.Fatalf("workers=%d: %d phases recorded, want 4", workers, len(r.Phases))
		}
		want := map[string]int64{
			"kappa":      kp,
			"lambda":     lp,
			"minimality": mp,
			"distances":  0,
		}
		for _, p := range r.Phases {
			if p.Probes != want[p.Phase] {
				t.Errorf("workers=%d: phase %s issued %d probes, ground truth %d",
					workers, p.Phase, p.Probes, want[p.Phase])
			}
		}
		if got := mFlowProbes.Value(); got != kp+lp+mp {
			t.Errorf("workers=%d: flow.maxflow.probes = %d, ground truth %d",
				workers, got, kp+lp+mp)
		}
		if got := mP3EdgesProbed.Value(); got != int64(g.Size()) {
			t.Errorf("workers=%d: check.p3.edges_probed = %d, want %d (every edge)",
				workers, got, g.Size())
		}
		if mVerifyRuns.Value() != 1 {
			t.Errorf("workers=%d: check.verify.runs = %d, want 1", workers, mVerifyRuns.Value())
		}
	}
}

// TestSerialParallelCountersAgree pins which counters are deterministic
// across worker counts: total max-flow probes and P3 edges probed must be
// bit-identical between a serial and a parallel run of the same
// verification. (Augmenting-path counts and network-pool traffic are
// deliberately excluded — stale early-exit limits and per-worker network
// reuse make them schedule-dependent.)
func TestSerialParallelCountersAgree(t *testing.T) {
	g := irregularPetersen()
	withSink(t)

	if _, err := Verify(g, 3); err != nil {
		t.Fatal(err)
	}
	serialProbes := mFlowProbes.Value()
	serialEdges := mP3EdgesProbed.Value()

	obs.Reset()
	if _, err := VerifyParallel(g, 3, 4); err != nil {
		t.Fatal(err)
	}
	if got := mFlowProbes.Value(); got != serialProbes {
		t.Errorf("flow.maxflow.probes: parallel %d != serial %d", got, serialProbes)
	}
	if got := mP3EdgesProbed.Value(); got != serialEdges {
		t.Errorf("check.p3.edges_probed: parallel %d != serial %d", got, serialEdges)
	}
}

// TestPhasesWithoutSink: phase wall times are always recorded (they cost
// one time.Since per phase), but probe counts stay zero when the sink is
// off, and the -v breakdown still renders.
func TestPhasesWithoutSink(t *testing.T) {
	obs.Disable()
	obs.Reset()
	r, err := Verify(petersen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 4 {
		t.Fatalf("%d phases recorded, want 4", len(r.Phases))
	}
	for _, p := range r.Phases {
		if p.Probes != 0 {
			t.Errorf("phase %s reports %d probes with the sink disabled", p.Phase, p.Probes)
		}
	}
	b := r.PhaseBreakdown()
	for _, wantLine := range []string{"kappa:", "lambda:", "minimality:", "distances:", "total:", "workers: 1"} {
		if !strings.Contains(b, wantLine) {
			t.Errorf("PhaseBreakdown missing %q:\n%s", wantLine, b)
		}
	}
}

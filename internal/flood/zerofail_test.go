package flood

import (
	"testing"

	"lhg/internal/sim"
)

// TestRandomNodeFailuresZero is the regression test for the off-by-one
// that made f=0 crash every node except the source.
func TestRandomNodeFailuresZero(t *testing.T) {
	g := cycle(12)
	f, err := RandomNodeFailures(g, 3, 0, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes) != 0 {
		t.Fatalf("f=0 drew %d failures: %v", len(f.Nodes), f.Nodes)
	}
	res, err := Run(g, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive != 12 || !res.Complete {
		t.Fatalf("f=0 flood must cover all 12 nodes: %s", res)
	}
}

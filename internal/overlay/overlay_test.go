package overlay

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/harary"
)

func ktreeTopology(n, k int) (*graph.Graph, error) {
	kt, err := core.BuildKTree(n, k)
	if err != nil {
		return nil, err
	}
	return kt.Real.Graph, nil
}

func kdiamondTopology(n, k int) (*graph.Graph, error) {
	kd, err := core.BuildKDiamond(n, k)
	if err != nil {
		return nil, err
	}
	return kd.Real.Graph, nil
}

func TestNewRejectsNilTopology(t *testing.T) {
	if _, err := New(3, 10, nil); err == nil {
		t.Fatal("nil topology must be rejected")
	}
}

func TestNewRejectsImpossibleSize(t *testing.T) {
	if _, err := New(3, 5, ktreeTopology); err == nil {
		t.Fatal("n=5 < 2k=6 must fail")
	}
}

func TestJoinGrowsAndStaysLHG(t *testing.T) {
	o, err := New(3, 6, kdiamondTopology)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := o.Join(); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if o.Size() != 16 {
		t.Fatalf("Size = %d, want 16", o.Size())
	}
	if o.Generation() != 10 {
		t.Fatalf("Generation = %d, want 10", o.Generation())
	}
	r, err := check.Verify(o.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsLHG() {
		t.Fatalf("overlay topology is not an LHG after churn: %s", r)
	}
}

func TestLeaveShrinks(t *testing.T) {
	o, err := New(3, 10, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Leave(); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 9 {
		t.Fatalf("Size = %d, want 9", o.Size())
	}
	// Shrinking below 2k must fail and leave the overlay unchanged.
	if _, err := o.Resize(5); err == nil {
		t.Fatal("resize below 2k must fail")
	}
	if o.Size() != 9 {
		t.Fatalf("failed resize changed the size to %d", o.Size())
	}
}

func TestChurnAccounting(t *testing.T) {
	o, err := New(3, 12, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Graph()
	c, err := o.Join()
	if err != nil {
		t.Fatal(err)
	}
	after := o.Graph()
	if c.Kept+c.Removed != before.Size() {
		t.Fatalf("kept %d + removed %d != old size %d", c.Kept, c.Removed, before.Size())
	}
	if c.Kept+c.Added != after.Size() {
		t.Fatalf("kept %d + added %d != new size %d", c.Kept, c.Added, after.Size())
	}
	if c.Total() != c.Added+c.Removed {
		t.Fatalf("Total = %d, want %d", c.Total(), c.Added+c.Removed)
	}
}

func TestChurnZeroOnNoopResize(t *testing.T) {
	o, err := New(3, 12, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	c, err := o.Resize(12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Added != 0 || c.Removed != 0 {
		t.Fatalf("rebuilding the same size churned: %+v", c)
	}
}

func TestBroadcastOnOverlay(t *testing.T) {
	o, err := New(4, 20, kdiamondTopology)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Broadcast(0, flood.Failures{Nodes: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("4-connected overlay must survive 3 failures: %s", res)
	}
}

func TestOverlayAccessors(t *testing.T) {
	o, err := New(3, 8, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	if o.K() != 3 {
		t.Fatalf("K = %d, want 3", o.K())
	}
	size := o.Graph().Size()
	b := o.Graph().Thaw()
	e := o.Graph().Edges()[0]
	b.RemoveEdge(e.U, e.V)
	if b.Freeze().Size() != size-1 || o.Graph().Size() != size {
		t.Fatal("mutating a thawed copy must not affect the overlay's frozen view")
	}
}

func TestHararyOverlayWorksToo(t *testing.T) {
	o, err := New(3, 9, harary.Build)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Join(); err != nil {
		t.Fatal(err)
	}
	res, err := o.Broadcast(2, flood.Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("harary broadcast incomplete: %s", res)
	}
}

func TestLeaveNodeArbitrary(t *testing.T) {
	o, err := New(3, 12, kdiamondTopology)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Graph()
	c, err := o.LeaveNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 11 {
		t.Fatalf("Size = %d, want 11", o.Size())
	}
	// Accounting identities: every old edge is kept or removed; every new
	// edge is kept or added.
	if c.Kept+c.Removed != before.Size() {
		t.Fatalf("kept %d + removed %d != old m %d", c.Kept, c.Removed, before.Size())
	}
	if c.Kept+c.Added != o.Graph().Size() {
		t.Fatalf("kept %d + added %d != new m %d", c.Kept, c.Added, o.Graph().Size())
	}
	// The departing member had degree >= k, so at least k links died.
	if c.Removed < 3 {
		t.Fatalf("removed %d links, want >= k", c.Removed)
	}
	r, err := check.Verify(o.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsLHG() {
		t.Fatalf("overlay not an LHG after departure: %s", r)
	}
}

func TestLeaveNodeLastEqualsLeave(t *testing.T) {
	a, err := New(3, 10, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, 10, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.LeaveNode(9)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Leave()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("LeaveNode(last) churn %+v != Leave churn %+v", ca, cb)
	}
}

func TestLeaveNodeErrors(t *testing.T) {
	o, err := New(3, 8, ktreeTopology)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.LeaveNode(99); err == nil {
		t.Fatal("unknown member must error")
	}
	// Shrinking to below 2k must fail and leave the overlay intact.
	for o.Size() > 6 {
		if _, err := o.LeaveNode(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.LeaveNode(0); err == nil {
		t.Fatal("shrinking below 2k must fail")
	}
	if o.Size() != 6 {
		t.Fatalf("failed departure changed size to %d", o.Size())
	}
}

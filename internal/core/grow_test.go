package core

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/graph"
)

// grower abstracts the two incremental builders for shared test logic.
type grower interface {
	Grow() (EdgeDelta, error)
	Snapshot() *graph.Graph
	Graph() *graph.Graph
	N() int
	K() int
}

func TestGrowerConstructorsRejectSmallK(t *testing.T) {
	if _, err := NewKTreeGrower(2); err == nil {
		t.Fatal("k=2 must be rejected")
	}
	if _, err := NewKDiamondGrower(2); err == nil {
		t.Fatal("k=2 must be rejected")
	}
}

func TestGrowerInitialGraphIsMinimalLHG(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		for _, mk := range []func(int) (grower, error){
			func(k int) (grower, error) { return NewKTreeGrower(k) },
			func(k int) (grower, error) { return NewKDiamondGrower(k) },
		} {
			gr, err := mk(k)
			if err != nil {
				t.Fatal(err)
			}
			g := gr.Snapshot()
			if g.Order() != 2*k {
				t.Fatalf("initial order %d, want %d", g.Order(), 2*k)
			}
			if !g.IsRegular(k) {
				t.Fatalf("initial graph must be k-regular")
			}
			ok, err := check.QuickVerify(g, k)
			if err != nil || !ok {
				t.Fatalf("initial graph is not an LHG (k=%d): %v", k, err)
			}
		}
	}
}

// TestKTreeGrowerEveryStepIsLHG is the headline incremental property: the
// graph satisfies all LHG properties after every single admission, and is
// k-regular exactly on the Theorem 3 grid.
func TestKTreeGrowerEveryStepIsLHG(t *testing.T) {
	for _, k := range []int{3, 4} {
		gr, err := NewKTreeGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6*k; step++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatalf("k=%d step %d: %v", k, step, err)
			}
			n := gr.N()
			g := gr.Snapshot()
			ok, err := check.QuickVerify(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				r, _ := check.Verify(g, k)
				t.Fatalf("k=%d n=%d: grower graph is not an LHG: %s", k, n, r)
			}
			if g.IsRegular(k) != RegularKTree(n, k) {
				t.Fatalf("k=%d n=%d: regular=%t, Theorem 3 says %t",
					k, n, g.IsRegular(k), RegularKTree(n, k))
			}
		}
	}
}

// TestKDiamondGrowerEveryStepIsLHG mirrors the above for K-DIAMOND: regular
// exactly on the denser Theorem 6 grid.
func TestKDiamondGrowerEveryStepIsLHG(t *testing.T) {
	for _, k := range []int{3, 4} {
		gr, err := NewKDiamondGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6*k; step++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatalf("k=%d step %d: %v", k, step, err)
			}
			n := gr.N()
			g := gr.Snapshot()
			ok, err := check.QuickVerify(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				r, _ := check.Verify(g, k)
				t.Fatalf("k=%d n=%d: grower graph is not an LHG: %s", k, n, r)
			}
			if g.IsRegular(k) != RegularKDiamond(n, k) {
				t.Fatalf("k=%d n=%d: regular=%t, Theorem 6 says %t",
					k, n, g.IsRegular(k), RegularKDiamond(n, k))
			}
		}
	}
}

// TestGrowerNodeCountMatchesCanonical: incremental and canonical builders
// agree on node and edge counts at every size (the graphs are isomorphic
// by construction; counting is the cheap invariant to assert).
func TestGrowerNodeCountMatchesCanonical(t *testing.T) {
	k := 3
	ktg, err := NewKTreeGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	kdg, err := NewKDiamondGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		if _, err := ktg.Grow(); err != nil {
			t.Fatal(err)
		}
		if _, err := kdg.Grow(); err != nil {
			t.Fatal(err)
		}
		n := 2*k + step + 1
		if ktg.N() != n || kdg.N() != n {
			t.Fatalf("step %d: sizes %d/%d, want %d", step, ktg.N(), kdg.N(), n)
		}
		kt, err := BuildKTree(n, k)
		if err != nil {
			t.Fatal(err)
		}
		if ktg.Snapshot().Size() != kt.Real.Graph.Size() {
			t.Fatalf("n=%d: ktree grower has %d edges, canonical %d",
				n, ktg.Snapshot().Size(), kt.Real.Graph.Size())
		}
		kd, err := BuildKDiamond(n, k)
		if err != nil {
			t.Fatal(err)
		}
		if kdg.Snapshot().Size() != kd.Real.Graph.Size() {
			t.Fatalf("n=%d: kdiamond grower has %d edges, canonical %d",
				n, kdg.Snapshot().Size(), kd.Real.Graph.Size())
		}
	}
}

// TestGrowerChurnIsSizeIndependent: the edge surgery per admission is
// bounded by a function of k alone — the payoff over canonical rebuilds.
func TestGrowerChurnIsSizeIndependent(t *testing.T) {
	k := 4
	bound := 3 * k * k // loose O(k²) cap
	for _, mk := range []func() (grower, error){
		func() (grower, error) { return NewKTreeGrower(k) },
		func() (grower, error) { return NewKDiamondGrower(k) },
	} {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			d, err := gr.Grow()
			if err != nil {
				t.Fatal(err)
			}
			if d.Total() > bound {
				t.Fatalf("step %d: churn %d exceeds O(k²) bound %d", step, d.Total(), bound)
			}
		}
	}
}

// TestGrowerDeltaMatchesGraph: applying the reported delta to the previous
// snapshot reproduces the new snapshot exactly.
func TestGrowerDeltaMatchesGraph(t *testing.T) {
	gr, err := NewKDiamondGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := gr.Graph().Thaw()
	for step := 0; step < 25; step++ {
		d, err := gr.Grow()
		if err != nil {
			t.Fatal(err)
		}
		for prev.Order() < gr.N() {
			prev.AddNode()
		}
		for _, e := range d.Removed {
			if !prev.RemoveEdge(e.U, e.V) {
				t.Fatalf("step %d: delta removes non-existent edge %v", step, e)
			}
		}
		for _, e := range d.Added {
			if prev.HasEdge(e.U, e.V) {
				t.Fatalf("step %d: delta adds duplicate edge %v", step, e)
			}
			if err := prev.AddEdge(e.U, e.V); err != nil {
				t.Fatalf("step %d: delta add %v: %v", step, e, err)
			}
		}
		cur := gr.Snapshot()
		if prev.Size() != cur.Size() {
			t.Fatalf("step %d: replay has %d edges, grower %d", step, prev.Size(), cur.Size())
		}
		for _, e := range cur.Edges() {
			if !prev.HasEdge(e.U, e.V) {
				t.Fatalf("step %d: replay missing edge %v", step, e)
			}
		}
	}
}

// TestGrowerStableIDs: once admitted, a node keeps its id and never loses
// connectivity to the rest of the overlay.
func TestGrowerStableIDs(t *testing.T) {
	gr, err := NewKTreeGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		if _, err := gr.Grow(); err != nil {
			t.Fatal(err)
		}
		g := gr.Snapshot()
		if !g.Connected() {
			t.Fatalf("step %d: graph disconnected", step)
		}
		minDeg, node := g.MinDegree()
		if minDeg < 3 {
			t.Fatalf("step %d: node %d has degree %d < k", step, node, minDeg)
		}
	}
}

// TestGrowerLongRunDiameter: after hundreds of admissions the diameter is
// still within the logarithmic bound.
func TestGrowerLongRunDiameter(t *testing.T) {
	k := 3
	gr, err := NewKDiamondGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	for gr.N() < 500 {
		if _, err := gr.Grow(); err != nil {
			t.Fatal(err)
		}
	}
	g := gr.Snapshot()
	diam := g.Diameter()
	if bound := check.DiameterBound(g.Order(), k); diam > bound {
		t.Fatalf("diameter %d exceeds bound %d at n=%d", diam, bound, g.Order())
	}
}

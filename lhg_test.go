package lhg_test

import (
	"context"
	"errors"
	"testing"

	"lhg"
)

func TestBuildAllConstraints(t *testing.T) {
	tests := []struct {
		c    lhg.Constraint
		n, k int
	}{
		{c: lhg.Harary, n: 12, k: 3},
		{c: lhg.JD, n: 10, k: 3},
		{c: lhg.KTree, n: 11, k: 3},
		{c: lhg.KDiamond, n: 11, k: 3},
	}
	for _, tt := range tests {
		t.Run(tt.c.String(), func(t *testing.T) {
			g, err := lhg.Build(context.Background(), tt.c, tt.n, tt.k)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if g.Order() != tt.n {
				t.Fatalf("Order = %d, want %d", g.Order(), tt.n)
			}
			r, err := lhg.Verify(context.Background(), g, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if !r.KNodeConnected || !r.KLinkConnected {
				t.Fatalf("%v(%d,%d) not %d-connected: %s", tt.c, tt.n, tt.k, tt.k, r)
			}
		})
	}
}

func TestBuildUnknownConstraint(t *testing.T) {
	if _, err := lhg.Build(context.Background(), lhg.Constraint(99), 10, 3); err == nil {
		t.Fatal("unknown constraint must error")
	}
	if _, _, err := lhg.Labeled(lhg.Constraint(99), 10, 3); err == nil {
		t.Fatal("unknown constraint must error")
	}
}

func TestBuildNotConstructible(t *testing.T) {
	_, err := lhg.Build(context.Background(), lhg.KTree, 5, 3)
	if !errors.Is(err, lhg.ErrNotConstructible) {
		t.Fatalf("err = %v, want ErrNotConstructible", err)
	}
	_, err = lhg.Build(context.Background(), lhg.JD, 9, 3)
	if !errors.Is(err, lhg.ErrNotConstructible) {
		t.Fatalf("err = %v, want ErrNotConstructible", err)
	}
}

func TestLabeled(t *testing.T) {
	g, labels, err := lhg.Labeled(lhg.KDiamond, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != g.Order() {
		t.Fatalf("labels cover %d of %d nodes", len(labels), g.Order())
	}
	// Harary has no tree labels.
	_, labels, err = lhg.Labeled(lhg.Harary, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Fatal("Harary labels must be nil")
	}
}

func TestParseConstraint(t *testing.T) {
	for _, c := range lhg.Constraints() {
		got, err := lhg.ParseConstraint(c.String())
		if err != nil {
			t.Fatalf("ParseConstraint(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %v != %v", got, c)
		}
	}
	if _, err := lhg.ParseConstraint("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	if s := lhg.Constraint(99).String(); s != "constraint(99)" {
		t.Fatalf("String of invalid = %q", s)
	}
}

func TestConstraintsDeterministicAndCopied(t *testing.T) {
	want := []lhg.Constraint{lhg.Harary, lhg.JD, lhg.KTree, lhg.KDiamond}
	got := lhg.Constraints()
	if len(got) != len(want) {
		t.Fatalf("Constraints() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Constraints()[%d] = %v, want %v (presentation order)", i, got[i], want[i])
		}
	}
	// The slice is the caller's to mutate; the package must hand out a copy.
	got[0] = lhg.KDiamond
	if again := lhg.Constraints(); again[0] != lhg.Harary {
		t.Fatal("Constraints() must return a fresh copy each call")
	}
}

func TestExistsMatrix(t *testing.T) {
	tests := []struct {
		c    lhg.Constraint
		n, k int
		want bool
	}{
		{c: lhg.Harary, n: 5, k: 2, want: true},
		{c: lhg.Harary, n: 2, k: 2, want: false},
		{c: lhg.KTree, n: 6, k: 3, want: true},
		{c: lhg.KTree, n: 5, k: 3, want: false},
		{c: lhg.KDiamond, n: 7, k: 3, want: true},
		{c: lhg.JD, n: 9, k: 3, want: false},
		{c: lhg.JD, n: 10, k: 3, want: true},
		{c: lhg.Constraint(99), n: 10, k: 3, want: false},
	}
	for _, tt := range tests {
		if got := lhg.Exists(tt.c, tt.n, tt.k); got != tt.want {
			t.Fatalf("Exists(%v,%d,%d) = %t, want %t", tt.c, tt.n, tt.k, got, tt.want)
		}
	}
}

func TestRegularMatrix(t *testing.T) {
	tests := []struct {
		c    lhg.Constraint
		n, k int
		want bool
	}{
		{c: lhg.Harary, n: 6, k: 3, want: true},
		{c: lhg.Harary, n: 7, k: 3, want: false}, // odd k*n
		{c: lhg.KTree, n: 10, k: 3, want: true},
		{c: lhg.KTree, n: 8, k: 3, want: false},
		{c: lhg.KDiamond, n: 8, k: 3, want: true},
		{c: lhg.JD, n: 10, k: 3, want: true},
		{c: lhg.JD, n: 12, k: 3, want: false},
		{c: lhg.Constraint(99), n: 10, k: 3, want: false},
	}
	for _, tt := range tests {
		if got := lhg.Regular(tt.c, tt.n, tt.k); got != tt.want {
			t.Fatalf("Regular(%v,%d,%d) = %t, want %t", tt.c, tt.n, tt.k, got, tt.want)
		}
	}
}

func TestIsLHGFacade(t *testing.T) {
	g, err := lhg.Build(context.Background(), lhg.KTree, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lhg.IsLHG(context.Background(), g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("K-TREE(12,3) must be an LHG")
	}
}

func TestFloodFacadeSurvivesFailures(t *testing.T) {
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lhg.Flood(context.Background(), g, 0, lhg.WithFailures(lhg.Failures{Nodes: []int{2, 5, 9}}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("4-connected flood with 3 failures incomplete: %s", res)
	}
}

func TestFloodBudgetFacade(t *testing.T) {
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := lhg.FloodBudget(context.Background(), g, 0, 4, lhg.DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if report.MinDiversity < 4 {
		t.Fatalf("diversity %d below the design connectivity", report.MinDiversity)
	}
	if want := 2 * int64(g.Size()) * 13; report.FrameCeiling != want {
		t.Fatalf("frame ceiling %d, want 2m(1+R) = %d", report.FrameCeiling, want)
	}
	guard := report.Guard()
	if guard.HopBudget <= 0 || guard.RetryBudget != 12 || guard.RetransmitRate <= 0 {
		t.Fatalf("guard plan not derived: %+v", guard)
	}
}

// TestEndToEndAllConstraintsAgree is the integration pass: for a grid of
// pairs, whenever two constructions both exist they are both verified LHGs
// and both flood completely under k-1 adversarial-ish failures.
func TestEndToEndAllConstraintsAgree(t *testing.T) {
	k := 3
	for n := 2 * k; n <= 30; n++ {
		for _, c := range []lhg.Constraint{lhg.JD, lhg.KTree, lhg.KDiamond} {
			if !lhg.Exists(c, n, k) {
				continue
			}
			g, err := lhg.Build(context.Background(), c, n, k)
			if err != nil {
				t.Fatalf("Build(%v,%d,%d): %v", c, n, k, err)
			}
			ok, err := lhg.IsLHG(context.Background(), g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%v(%d,%d) is not an LHG", c, n, k)
			}
			res, err := lhg.Flood(context.Background(), g, n-1, lhg.WithFailures(lhg.Failures{Nodes: []int{0, 1}}))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("%v(%d,%d) flood incomplete with 2 failures", c, n, k)
			}
		}
	}
}

func TestBuildRouted(t *testing.T) {
	for _, c := range []lhg.Constraint{lhg.KTree, lhg.KDiamond} {
		g, router, err := lhg.BuildRouted(c, 26, 3)
		if err != nil {
			t.Fatal(err)
		}
		path, err := router.Route(0, g.Order()-1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				t.Fatalf("%v route uses missing edge", c)
			}
		}
		if len(path)-1 > router.MaxRouteLength() {
			t.Fatalf("%v route too long", c)
		}
	}
	if _, _, err := lhg.BuildRouted(lhg.Harary, 26, 3); err == nil {
		t.Fatal("harary must have no router")
	}
}

func TestNewOverlayFacade(t *testing.T) {
	o, err := lhg.NewOverlay(lhg.KDiamond, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Join(); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 9 {
		t.Fatalf("Size = %d, want 9", o.Size())
	}
	if _, err := lhg.NewOverlay(lhg.KTree, 3, 5); err == nil {
		t.Fatal("n < 2k must fail")
	}
}

func TestNewMembershipFacade(t *testing.T) {
	s, err := lhg.NewMembership(lhg.KTree, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(4, 7); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.View.Size != 8 || !s.ConsistentViews() {
		t.Fatalf("repair: %+v consistent=%t", rep.View, s.ConsistentViews())
	}
}

func TestBuildVariantFacade(t *testing.T) {
	g, err := lhg.BuildVariant(lhg.KDiamond, 20, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lhg.IsLHG(context.Background(), g, 3)
	if err != nil || !ok {
		t.Fatalf("variant not an LHG: %v", err)
	}
	if _, err := lhg.BuildVariant(lhg.Harary, 20, 3, 5); err == nil {
		t.Fatal("harary has no variant builder")
	}
}

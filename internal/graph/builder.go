package graph

import (
	"fmt"
	"sort"
)

// Builder is the mutable construction phase of a graph: nodes and edges are
// appended (and, for the incremental growers, removed) without any sorting;
// Freeze compacts the adjacency into the immutable CSR Graph, sorting each
// row exactly once.
//
// Neighbor lists are kept unsorted while building, so AddEdge and
// RemoveEdge cost O(deg) for the duplicate/membership scan but never shift
// a sorted slice. A Builder is not safe for concurrent use; freeze it and
// share the Graph instead.
type Builder struct {
	adj    [][]int32 // unsorted neighbor lists
	edges  int
	frozen *Graph // cached freeze, invalidated by any mutation
}

// NewBuilder returns a builder over n isolated nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{adj: make([][]int32, n)}
}

// Order returns the current number of nodes.
func (b *Builder) Order() int { return len(b.adj) }

// Size returns the current number of edges.
func (b *Builder) Size() int { return b.edges }

// AddNode appends a new isolated node and returns its id.
func (b *Builder) AddNode() int {
	b.frozen = nil
	b.adj = append(b.adj, nil)
	return len(b.adj) - 1
}

// Grow appends m isolated nodes and returns the id of the first.
func (b *Builder) Grow(m int) int {
	b.frozen = nil
	first := len(b.adj)
	b.adj = append(b.adj, make([][]int32, m)...)
	return first
}

// AddEdge inserts the undirected edge (u,v). It returns an error if either
// endpoint is out of range or u == v. Adding an existing edge is a no-op.
func (b *Builder) AddEdge(u, v int) error {
	if err := b.check(u); err != nil {
		return err
	}
	if err := b.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if b.HasEdge(u, v) {
		return nil
	}
	b.frozen = nil
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	b.edges++
	return nil
}

// MustAddEdge is AddEdge for callers that guarantee valid endpoints, such as
// the internal constructions; it panics on invalid input (a programming
// error, not a runtime condition).
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge (u,v) if present and reports
// whether an edge was removed.
func (b *Builder) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(b.adj) || v >= len(b.adj) || u == v {
		return false
	}
	if !b.removeHalf(u, v) {
		return false
	}
	b.removeHalf(v, u)
	b.frozen = nil
	b.edges--
	return true
}

// removeHalf drops w from u's list by swap-delete, reporting presence.
func (b *Builder) removeHalf(u, w int) bool {
	row := b.adj[u]
	for i, x := range row {
		if int(x) == w {
			row[i] = row[len(row)-1]
			b.adj[u] = row[:len(row)-1]
			return true
		}
	}
	return false
}

// RemoveLastNode drops the highest-numbered node, which must already be
// isolated — the inverse of AddNode for the shrink surgeries, which tear
// down every link of a departing label before retiring it.
func (b *Builder) RemoveLastNode() error {
	n := len(b.adj)
	if n == 0 {
		return fmt.Errorf("graph: no node to remove")
	}
	if len(b.adj[n-1]) != 0 {
		return fmt.Errorf("graph: node %d still has %d links", n-1, len(b.adj[n-1]))
	}
	b.frozen = nil
	b.adj = b.adj[:n-1]
	return nil
}

// HasEdge reports whether the edge (u,v) exists.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= len(b.adj) || v < 0 || v >= len(b.adj) {
		return false
	}
	row := b.adj[u]
	if r := b.adj[v]; len(r) < len(row) {
		row, v = r, u
	}
	for _, x := range row {
		if int(x) == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of node v, or 0 if v is out of range.
func (b *Builder) Degree(v int) int {
	if v < 0 || v >= len(b.adj) {
		return 0
	}
	return len(b.adj[v])
}

// Neighbors returns a sorted copy of v's neighbor list.
func (b *Builder) Neighbors(v int) []int {
	if v < 0 || v >= len(b.adj) {
		return nil
	}
	out := make([]int, len(b.adj[v]))
	for i, w := range b.adj[v] {
		out[i] = int(w)
	}
	sort.Ints(out)
	return out
}

// Freeze compacts the builder into an immutable CSR Graph, sorting each
// adjacency row once. The builder remains usable; repeated freezes without
// intervening mutation return the same cached Graph. The returned Graph
// shares no storage with the builder.
func (b *Builder) Freeze() *Graph {
	if b.frozen != nil {
		return b.frozen
	}
	n := len(b.adj)
	g := &Graph{off: make([]int32, n+1), edges: b.edges}
	total := 0
	for v, row := range b.adj {
		total += len(row)
		g.off[v+1] = int32(total)
	}
	g.nbr = make([]int32, 0, total)
	for _, row := range b.adj {
		g.nbr = append(g.nbr, row...)
	}
	g.sortRows()
	b.frozen = g
	return g
}

func (b *Builder) check(v int) error {
	if v < 0 || v >= len(b.adj) {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, len(b.adj))
	}
	return nil
}

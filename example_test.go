package lhg_test

import (
	"context"
	"fmt"
	"log"

	"lhg"
)

// ExampleBuild constructs a K-DIAMOND LHG and prints its shape.
func ExampleBuild() {
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 14, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)
	// Output: graph(n=14, m=21, degmin=3, degmax=3)
}

// ExampleVerify proves every LHG property of a built graph.
func ExampleVerify() {
	g, err := lhg.Build(context.Background(), lhg.KTree, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	report, err := lhg.Verify(context.Background(), g, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.IsLHG(), report.Regular, report.NodeConnectivity)
	// Output: true true 3
}

// ExampleFlood shows delivery despite k-1 crashed nodes.
func ExampleFlood() {
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 20, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lhg.Flood(context.Background(), g, 0, lhg.WithFailures(lhg.Failures{Nodes: []int{4, 9}}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Complete, res.Reached, res.Alive)
	// Output: true 18 18
}

// ExampleExists evaluates the closed-form characteristic functions from
// Theorems 2 and 5 and the Jenkins–Demers gap at (9,3).
func ExampleExists() {
	fmt.Println(lhg.Exists(lhg.KTree, 9, 3))
	fmt.Println(lhg.Exists(lhg.KDiamond, 9, 3))
	fmt.Println(lhg.Exists(lhg.JD, 9, 3))
	// Output:
	// true
	// true
	// false
}

// ExampleRegular contrasts the regular grids of Theorems 3 and 6: at
// n = 8, k = 3 (odd α) only K-DIAMOND admits a 3-regular LHG.
func ExampleRegular() {
	fmt.Println(lhg.Regular(lhg.KTree, 8, 3))
	fmt.Println(lhg.Regular(lhg.KDiamond, 8, 3))
	// Output:
	// false
	// true
}

// ExampleNewKDiamondGrower grows an overlay one node at a time; the
// topology is a valid LHG after every step.
func ExampleNewKDiamondGrower() {
	gr, err := lhg.NewKDiamondGrower(3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		delta, err := gr.Grow()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d churn=%d regular=%t\n",
			gr.N(), delta.Total(), gr.Snapshot().IsRegular(3))
	}
	// Output:
	// n=7 churn=3 regular=false
	// n=8 churn=8 regular=true
	// n=9 churn=3 regular=false
	// n=10 churn=12 regular=true
}

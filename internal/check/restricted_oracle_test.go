package check

import (
	"context"
	"math/bits"
	"math/rand"
	"testing"

	"lhg/internal/graph"
)

// Independent ground truth for the opt-in fault-tolerance properties:
// λ′ and super-λ straight from their bipartition definitions, enumerated
// over every vertex split — no flows, no contractions, no shared code with
// the pipeline under test.

// oracleRestrictedLambda is λ′ by definition: the minimum crossing-edge
// count over bipartitions in which every vertex keeps a neighbor on its own
// side; -1 when no such bipartition exists.
func oracleRestrictedLambda(g *graph.Graph) int {
	n := g.Order()
	edges := g.Edges()
	best := -1
	for mask := 1; mask < 1<<(n-1); mask++ { // vertex n-1 pinned to side 0
		side := func(v int) int {
			if v == n-1 {
				return 0
			}
			return mask >> v & 1
		}
		restricted := true
		for v := 0; v < n && restricted; v++ {
			ok := false
			for _, w := range g.Neighbors(v) {
				if side(w) == side(v) {
					ok = true
					break
				}
			}
			restricted = ok
		}
		if !restricted {
			continue
		}
		cut := 0
		for _, e := range edges {
			if side(e.U) != side(e.V) {
				cut++
			}
		}
		if best < 0 || cut < best {
			best = cut
		}
	}
	return best
}

// oracleSuperLambda decides super edge connectivity by definition: λ ≥ 1
// and every bipartition achieving the minimum cut isolates one vertex.
func oracleSuperLambda(g *graph.Graph) bool {
	n := g.Order()
	edges := g.Edges()
	if n < 2 || len(edges) == 0 {
		return false
	}
	lambda, super := -1, true
	for mask := 1; mask < 1<<(n-1); mask++ {
		cut := 0
		for _, e := range edges {
			us, vs := 0, 0
			if e.U < n-1 {
				us = mask >> e.U & 1
			}
			if e.V < n-1 {
				vs = mask >> e.V & 1
			}
			if us != vs {
				cut++
			}
		}
		size := bits.OnesCount(uint(mask))
		small := size
		if n-size < small {
			small = n - size
		}
		switch {
		case lambda < 0 || cut < lambda:
			lambda, super = cut, small == 1
		case cut == lambda && small != 1:
			super = false
		}
	}
	return lambda >= 1 && super
}

// TestVerifyRestrictedSuperAgainstOracle runs the opt-in PropSuperEdge
// report (which pulls in PropRestrictedEdge and PropLinkConnectivity) over
// seeded random graphs and asserts both extended fields against the
// bipartition oracles, serial and parallel, with and without the prescreen.
func TestVerifyRestrictedSuperAgainstOracle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)         // 4..10
		percent := 15 + rng.Intn(85) // sparse through complete
		g, _, _ := oracleGraph(rng, n, percent)
		wantRestricted := oracleRestrictedLambda(g)
		wantSuper := oracleSuperLambda(g)
		for _, opt := range []Options{
			{Workers: 1, Props: PropSuperEdge},
			{Workers: 4, Props: PropSuperEdge},
			{Workers: 1, Props: PropSuperEdge, Prescreen: PrescreenAlways},
		} {
			r, err := VerifyCtx(ctx, g, 1, opt)
			if err != nil {
				t.Fatal(err)
			}
			if r.RestrictedEdgeConnectivity != wantRestricted {
				t.Fatalf("seed=%d n=%d p=%d %+v: λ'=%d, oracle %d",
					seed, n, percent, opt, r.RestrictedEdgeConnectivity, wantRestricted)
			}
			if r.SuperEdgeConnected != wantSuper {
				t.Fatalf("seed=%d n=%d p=%d %+v: super=%t (λ=%d δ=%d λ'=%d), oracle %t",
					seed, n, percent, opt, r.SuperEdgeConnected,
					r.EdgeConnectivity, r.MinDegree, r.RestrictedEdgeConnectivity, wantSuper)
			}
			if !r.Checked.Has(PropRestrictedEdge) || !r.Checked.Has(PropLinkConnectivity) {
				t.Fatalf("seed=%d: PropSuperEdge did not pull in its dependencies (checked %v)", seed, r.Checked)
			}
		}
	}
}

// TestVerifyDefaultSkipsExtendedProps pins that the extended measures stay
// opt-in: a default (PropAll) report leaves them at their zero values and
// does not mark them checked.
func TestVerifyDefaultSkipsExtendedProps(t *testing.T) {
	g := mustHarary(t, 14, 4)
	r, err := Verify(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checked.Has(PropRestrictedEdge) || r.Checked.Has(PropSuperEdge) {
		t.Fatalf("default verify computed opt-in props: checked %v", r.Checked)
	}
	if r.RestrictedEdgeConnectivity != 0 || r.SuperEdgeConnected {
		t.Fatalf("unchecked extended fields not zero: λ'=%d super=%t",
			r.RestrictedEdgeConnectivity, r.SuperEdgeConnected)
	}
}

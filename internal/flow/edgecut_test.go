package flow

import (
	"testing"
	"testing/quick"

	"lhg/internal/graph"
)

func TestMinEdgeCutSetBridge(t *testing.T) {
	g := twoTriangles()
	cut, err := MinEdgeCutSet(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 1 || (cut[0] != graph.Edge{U: 2, V: 3}) {
		t.Fatalf("cut = %v, want the bridge (2,3)", cut)
	}
}

func TestMinEdgeCutSetErrors(t *testing.T) {
	g := cycle(4)
	if _, err := MinEdgeCutSet(g, 0, 0); err == nil {
		t.Fatal("identical endpoints must error")
	}
	if _, err := MinEdgeCutSet(g, -1, 2); err == nil {
		t.Fatal("out of range must error")
	}
}

func TestGlobalMinEdgeCutSetCycle(t *testing.T) {
	g := cycle(8)
	cut, err := GlobalMinEdgeCutSet(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 2 {
		t.Fatalf("global cut of a cycle has %d edges, want 2", len(cut))
	}
	h := g
	for _, e := range cut {
		h = h.WithoutEdge(e.U, e.V)
	}
	if h.Connected() {
		t.Fatal("removing the global cut must disconnect the cycle")
	}
}

func TestGlobalMinEdgeCutSetErrors(t *testing.T) {
	if _, err := GlobalMinEdgeCutSet(graph.New(1)); err == nil {
		t.Fatal("singleton graph must error")
	}
}

func TestGlobalMinEdgeCutDisconnected(t *testing.T) {
	cut, err := GlobalMinEdgeCutSet(graph.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 0 {
		t.Fatalf("already-disconnected graph needs an empty cut, got %v", cut)
	}
}

func TestPropertyEdgeCutSetMatchesValueAndDisconnects(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 3
		g := randomGraph(n, uint64(seed))
		for s := 0; s < n; s++ {
			for t2 := s + 1; t2 < n; t2++ {
				want, err := EdgeCut(g, s, t2)
				if err != nil {
					return false
				}
				cut, err := MinEdgeCutSet(g, s, t2)
				if err != nil || len(cut) != want {
					return false
				}
				h := g
				for _, e := range cut {
					if !h.HasEdge(e.U, e.V) {
						return false
					}
					h = h.WithoutEdge(e.U, e.V)
				}
				if want > 0 && h.BFSFrom(s)[t2] >= 0 {
					return false // cut failed to separate
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGlobalEdgeCutMatchesConnectivity(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		g := randomGraph(n, uint64(seed))
		cut, err := GlobalMinEdgeCutSet(g)
		if err != nil {
			return false
		}
		if len(cut) != EdgeConnectivity(g) {
			return false
		}
		if len(cut) == 0 {
			return true
		}
		h := g
		for _, e := range cut {
			h = h.WithoutEdge(e.U, e.V)
		}
		return !h.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCutpointsConsistentWithFlow: Tarjan low-link results and
// max-flow connectivity must tell the same story on random graphs —
// κ >= 2 iff no articulation point (for connected graphs with >= 3 nodes),
// λ >= 2 iff no bridge.
func TestPropertyCutpointsConsistentWithFlow(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%10) + 3
		g := randomGraph(n, uint64(seed))
		if !g.Connected() {
			return true
		}
		kappa2 := IsKNodeConnected(g, 2)
		if kappa2 != (len(g.ArticulationPoints()) == 0) {
			return false
		}
		lambda2 := IsKEdgeConnected(g, 2)
		return lambda2 == (len(g.Bridges()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package classic

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/flow"
)

func TestHypercubeStructure(t *testing.T) {
	for d := 2; d <= 6; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << d
		if g.Order() != n {
			t.Fatalf("Q%d has %d nodes", d, g.Order())
		}
		if !g.IsRegular(d) {
			t.Fatalf("Q%d must be %d-regular", d, d)
		}
		if got := g.Diameter(); got != d {
			t.Fatalf("diam(Q%d) = %d, want %d", d, got, d)
		}
	}
}

func TestHypercubeConnectivity(t *testing.T) {
	for d := 2; d <= 4; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := flow.VertexConnectivity(g); got != d {
			t.Fatalf("κ(Q%d) = %d, want %d", d, got, d)
		}
	}
}

func TestHypercubeIsLHGForItsPair(t *testing.T) {
	// Q_4: (16, 4) — a valid LHG witness for exactly that pair.
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := check.QuickVerify(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Q4 must satisfy the LHG properties for (16,4)")
	}
}

func TestHypercubeErrors(t *testing.T) {
	if _, err := Hypercube(0); err == nil {
		t.Fatal("d=0 must error")
	}
	if _, err := Hypercube(25); err == nil {
		t.Fatal("huge d must error")
	}
}

func TestHypercubeExists(t *testing.T) {
	tests := []struct {
		n, k int
		want bool
	}{
		{n: 16, k: 4, want: true},
		{n: 8, k: 3, want: true},
		{n: 16, k: 3, want: false},
		{n: 20, k: 4, want: false},
		{n: 2, k: 1, want: true},
	}
	for _, tt := range tests {
		if got := HypercubeExists(tt.n, tt.k); got != tt.want {
			t.Fatalf("HypercubeExists(%d,%d) = %t", tt.n, tt.k, got)
		}
	}
}

func TestCCCStructure(t *testing.T) {
	for d := 3; d <= 5; d++ {
		g, err := CCC(d)
		if err != nil {
			t.Fatal(err)
		}
		if g.Order() != d*(1<<d) {
			t.Fatalf("CCC(%d) has %d nodes", d, g.Order())
		}
		if !g.IsRegular(3) {
			t.Fatalf("CCC(%d) must be 3-regular", d)
		}
		if !g.Connected() {
			t.Fatalf("CCC(%d) disconnected", d)
		}
	}
}

func TestCCCConnectivity(t *testing.T) {
	g, err := CCC(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := flow.VertexConnectivity(g); got != 3 {
		t.Fatalf("κ(CCC(3)) = %d, want 3", got)
	}
}

func TestCCCErrors(t *testing.T) {
	if _, err := CCC(2); err == nil {
		t.Fatal("d=2 must error")
	}
}

func TestCCCExists(t *testing.T) {
	if !CCCExists(24, 3) { // d=3: 3*8
		t.Fatal("CCC exists at (24,3)")
	}
	if !CCCExists(64, 3) { // d=4: 4*16
		t.Fatal("CCC exists at (64,3)")
	}
	if CCCExists(30, 3) || CCCExists(24, 4) {
		t.Fatal("false positives")
	}
}

func TestDeBruijnStructure(t *testing.T) {
	g, err := DeBruijn(2, 4) // 16 nodes, degree <= 4, κ = 2
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 16 {
		t.Fatalf("UB(2,4) has %d nodes", g.Order())
	}
	minDeg, _ := g.MinDegree()
	if minDeg != 2 {
		t.Fatalf("UB(2,4) min degree %d, want 2b-2 = 2", minDeg)
	}
	if got := flow.VertexConnectivity(g); got != 2 {
		t.Fatalf("κ(UB(2,4)) = %d, want 2", got)
	}
	// Logarithmic diameter: at most d.
	if diam := g.Diameter(); diam > 4 {
		t.Fatalf("diam(UB(2,4)) = %d > d", diam)
	}
}

func TestDeBruijnBaseThree(t *testing.T) {
	g, err := DeBruijn(3, 3) // 27 nodes, κ = 4
	if err != nil {
		t.Fatal(err)
	}
	if got := flow.VertexConnectivity(g); got != 4 {
		t.Fatalf("κ(UB(3,3)) = %d, want 2b-2 = 4", got)
	}
}

func TestDeBruijnErrors(t *testing.T) {
	if _, err := DeBruijn(1, 3); err == nil {
		t.Fatal("base 1 must error")
	}
	if _, err := DeBruijn(2, 1); err == nil {
		t.Fatal("d=1 must error")
	}
	if _, err := DeBruijn(8, 30); err == nil {
		t.Fatal("overflow must error")
	}
}

func TestDeBruijnExists(t *testing.T) {
	tests := []struct {
		n, k int
		want bool
	}{
		{n: 16, k: 2, want: true},  // b=2, d=4
		{n: 27, k: 4, want: true},  // b=3, d=3
		{n: 27, k: 3, want: false}, // odd k
		{n: 26, k: 4, want: false},
		{n: 8, k: 2, want: true}, // b=2, d=3
	}
	for _, tt := range tests {
		if got := DeBruijnExists(tt.n, tt.k); got != tt.want {
			t.Fatalf("DeBruijnExists(%d,%d) = %t, want %t", tt.n, tt.k, got, tt.want)
		}
	}
}

package graph

// BFSTree returns the breadth-first spanning tree of g rooted at src as a
// new graph over the same node ids (n-1 edges when g is connected). It is
// the classic fragile-dissemination baseline: flooding over a tree uses the
// fewest messages possible but any single node or link failure partitions
// it.
func (g *Graph) BFSTree(src int) *Graph {
	n := g.Order()
	if src < 0 || src >= n {
		return New(n)
	}
	visited := make([]bool, n)
	visited[src] = true
	queue := make([]int, 0, n)
	queue = append(queue, src)
	edges := make([]Edge, 0, n)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, w := range g.row(u) {
			v := int(w)
			if !visited[v] {
				visited[v] = true
				edges = append(edges, edgeOf(u, v))
				queue = append(queue, v)
			}
		}
	}
	return MustFromEdges(n, edges)
}

package flood

import (
	"fmt"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/sim"
)

// Adversary telemetry: how many nodes/links each planner killed, and how
// often the planner found an actual disconnecting cut (f >= connectivity).
var (
	mAdvNodeKills = obs.NewCounter("flood.adversary.node_kills")
	mAdvLinkKills = obs.NewCounter("flood.adversary.link_kills")
	mAdvCutsFound = obs.NewCounter("flood.adversary.cuts_found")
)

// RandomNodeFailures draws f distinct crashed nodes, never including the
// source, using the supplied generator.
func RandomNodeFailures(g *graph.Graph, source, f int, rng *sim.RNG) (Failures, error) {
	n := g.Order()
	if f < 0 || f >= n {
		return Failures{}, fmt.Errorf("flood: cannot fail %d of %d nodes", f, n)
	}
	var nodes []int
	for _, v := range rng.Perm(n) {
		if len(nodes) == f {
			break
		}
		if v == source {
			continue
		}
		nodes = append(nodes, v)
	}
	return Failures{Nodes: nodes}, nil
}

// RandomLinkFailures draws f distinct failed links using the supplied
// generator.
func RandomLinkFailures(g *graph.Graph, f int, rng *sim.RNG) (Failures, error) {
	edges := g.Edges()
	if f < 0 || f > len(edges) {
		return Failures{}, fmt.Errorf("flood: cannot fail %d of %d links", f, len(edges))
	}
	idx := rng.Sample(len(edges), f)
	links := make([]graph.Edge, 0, f)
	for _, i := range idx {
		links = append(links, edges[i])
	}
	return Failures{Links: links}, nil
}

// AdversarialNodeFailures picks the f crashed nodes that hurt the flood
// most. For f >= κ(G) it returns an actual minimum vertex cut (padded with
// neighbors of the source), which disconnects the flood; for f < κ it
// returns the f source neighbors — the choice that maximizes latency
// without being able to disconnect a k-connected graph.
func AdversarialNodeFailures(g *graph.Graph, source, f int) (Failures, error) {
	n := g.Order()
	if f < 0 || f >= n {
		return Failures{}, fmt.Errorf("flood: cannot fail %d of %d nodes", f, n)
	}
	if f == 0 {
		return Failures{}, nil
	}
	kappa := flow.VertexConnectivity(g)
	if f >= kappa {
		if cut := findCut(g, source, f); cut != nil {
			mAdvCutsFound.Inc()
			mAdvNodeKills.Add(int64(len(cut)))
			return Failures{Nodes: cut}, nil
		}
	}
	nbrs := g.Neighbors(source)
	nodes := make([]int, 0, f)
	for _, v := range nbrs {
		if len(nodes) == f {
			break
		}
		nodes = append(nodes, v)
	}
	for v := 0; len(nodes) < f && v < n; v++ {
		if v != source && !contains(nodes, v) {
			nodes = append(nodes, v)
		}
	}
	mAdvNodeKills.Add(int64(len(nodes)))
	return Failures{Nodes: nodes}, nil
}

// findCut searches for a vertex cut of size <= f that excludes the source,
// preferring cuts that separate the source from some other node.
func findCut(g *graph.Graph, source, f int) []int {
	n := g.Order()
	for t := 0; t < n; t++ {
		if t == source || g.HasEdge(source, t) {
			continue
		}
		cut, err := flow.MinVertexCutSet(g, source, t)
		if err != nil || len(cut) > f || contains(cut, source) {
			continue
		}
		return cut
	}
	return nil
}

// Reliability estimates, over `trials` seeded random failure draws of f
// crashed nodes, the fraction of floods that reach every alive node. On a
// k-connected graph the result is exactly 1 for every f <= k-1.
func Reliability(g *graph.Graph, source, f, trials int, rng *sim.RNG) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("flood: trials must be positive, got %d", trials)
	}
	ok := 0
	for i := 0; i < trials; i++ {
		fails, err := RandomNodeFailures(g, source, f, rng)
		if err != nil {
			return 0, err
		}
		res, err := Run(g, source, fails)
		if err != nil {
			return 0, err
		}
		if res.Complete {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

// Unreached runs the flood simulator under f and returns the alive nodes
// the flood cannot reach — the exact delivery gap expected when the same
// failures are injected at the socket layer, which is how the chaos
// harness asserts that a simulator-computed cut really severs the TCP
// cluster.
func Unreached(g *graph.Graph, source int, f Failures) ([]int, error) {
	res, err := Run(g, source, f)
	if err != nil {
		return nil, err
	}
	var out []int
	for v, round := range res.FirstHeard {
		if round == -1 && !contains(f.Nodes, v) {
			out = append(out, v)
		}
	}
	return out, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// AdversarialLinkFailures picks the f failed links that hurt the flood
// most: for f >= λ(G) it returns an actual minimum edge cut (padded with
// source-incident links); below λ it fails the source's own links, the
// choice that maximizes latency without being able to disconnect a k-link-
// connected graph.
func AdversarialLinkFailures(g *graph.Graph, source, f int) (Failures, error) {
	m := g.Size()
	if f < 0 || f > m {
		return Failures{}, fmt.Errorf("flood: cannot fail %d of %d links", f, m)
	}
	if f == 0 {
		return Failures{}, nil
	}
	lambda := flow.EdgeConnectivity(g)
	if f >= lambda {
		if cut, err := flow.GlobalMinEdgeCutSet(g); err == nil && len(cut) <= f {
			links := cut
			for _, e := range g.Edges() {
				if len(links) == f {
					break
				}
				if !containsEdge(links, e) {
					links = append(links, e)
				}
			}
			mAdvCutsFound.Inc()
			mAdvLinkKills.Add(int64(len(links)))
			return Failures{Links: links}, nil
		}
	}
	var links []graph.Edge
	for _, v := range g.Neighbors(source) {
		if len(links) == f {
			break
		}
		links = append(links, normalize(graph.Edge{U: source, V: v}))
	}
	for _, e := range g.Edges() {
		if len(links) == f {
			break
		}
		if !containsEdge(links, e) {
			links = append(links, e)
		}
	}
	mAdvLinkKills.Add(int64(len(links)))
	return Failures{Links: links}, nil
}

func containsEdge(s []graph.Edge, e graph.Edge) bool {
	e = normalize(e)
	for _, x := range s {
		if normalize(x) == e {
			return true
		}
	}
	return false
}

// LinkReliability estimates, over seeded random draws of f failed links,
// the fraction of floods that reach every node. On a k-link-connected
// graph the result is exactly 1 for every f <= k-1 (the P2 guarantee).
func LinkReliability(g *graph.Graph, source, f, trials int, rng *sim.RNG) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("flood: trials must be positive, got %d", trials)
	}
	ok := 0
	for i := 0; i < trials; i++ {
		fails, err := RandomLinkFailures(g, f, rng)
		if err != nil {
			return 0, err
		}
		res, err := Run(g, source, fails)
		if err != nil {
			return 0, err
		}
		if res.Complete {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

package core

import (
	"reflect"
	"testing"

	"lhg/internal/check"
)

// FuzzReconfigureEquivFresh is the differential churn fuzzer: ANY
// interleaving of joins and leaves must leave the engine on a graph that is
// bit-identical to a fresh grower driven straight to the same n — and,
// since check.Verify is a pure function of the graph, with an identical
// verification report. The report comparison (timings excluded — wall
// clock is not part of the contract) runs on the smaller sizes so the
// corpus stays fast enough for every plain `go test`.
//
// The seed corpus pins the known-dangerous schedules: pure joins, pure
// leaves after a ramp, strict alternation, and leaves landing exactly on
// the batch boundaries j = 2k−3 (K-TREE restructure) and j = k−2
// (K-DIAMOND form/dissolve).
func FuzzReconfigureEquivFresh(f *testing.F) {
	f.Add(uint8(3), uint8(0), []byte{1, 1, 1, 1, 1, 1, 1, 1})       // pure joins
	f.Add(uint8(3), uint8(0), []byte{1, 1, 1, 1, 1, 1, 0, 0, 0, 0}) // ramp then pure leaves
	f.Add(uint8(3), uint8(1), []byte{1, 0, 1, 0, 1, 0, 1, 0})       // alternating
	f.Add(uint8(3), uint8(0), []byte{1, 1, 1, 0, 1, 0, 0, 1})       // K-TREE boundary j=2k-3=3
	f.Add(uint8(3), uint8(1), []byte{1, 0, 0, 1, 1, 1, 0})          // K-DIAMOND boundary j=k-2=1
	f.Add(uint8(4), uint8(0), []byte{1, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0})
	f.Add(uint8(5), uint8(1), []byte{0, 1, 1, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, kRaw, which uint8, ops []byte) {
		k := int(kRaw%4) + 3
		if len(ops) > 64 {
			ops = ops[:64]
		}
		var gr Reconfigurer
		var fresh func(n int) Reconfigurer
		var err error
		if which%2 == 0 {
			gr, err = NewKTreeGrower(k)
			fresh = func(n int) Reconfigurer {
				g, err := NewKTreeGrowerAt(k, n)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
		} else {
			gr, err = NewKDiamondGrower(k)
			fresh = func(n int) Reconfigurer {
				g, err := NewKDiamondGrowerAt(k, n)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		joins, leaves := 0, 0
		for i, op := range ops {
			if op%2 == 1 {
				if _, err := gr.Grow(); err != nil {
					t.Fatalf("op %d (join) at n=%d: %v", i, gr.N(), err)
				}
				joins++
				continue
			}
			if gr.N() <= 2*k {
				// A leave at the minimal size must fail and leave the
				// engine untouched.
				before := gr.Graph()
				if _, err := gr.Shrink(); err == nil {
					t.Fatalf("op %d: leave at n=2k must fail", i)
				}
				if !graphsEqual(before, gr.Graph()) {
					t.Fatalf("op %d: failed leave mutated the graph", i)
				}
				continue
			}
			if _, err := gr.Shrink(); err != nil {
				t.Fatalf("op %d (leave) at n=%d: %v", i, gr.N(), err)
			}
			leaves++
		}
		ref := fresh(gr.N())
		if !graphsEqual(gr.Graph(), ref.Graph()) {
			t.Fatalf("k=%d after %d joins / %d leaves: churned graph differs from fresh build at n=%d",
				k, joins, leaves, gr.N())
		}
		if gr.N() <= 2*k+12 {
			got, err := check.Verify(gr.Graph(), k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := check.Verify(ref.Graph(), k)
			if err != nil {
				t.Fatal(err)
			}
			got.Phases, want.Phases = nil, nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d n=%d: churned report %s differs from fresh %s", k, gr.N(), got, want)
			}
		}
	})
}

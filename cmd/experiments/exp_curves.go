package main

import (
	"fmt"
	"io"
	"sort"

	"lhg"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/overlay"
	"lhg/internal/sim"
)

// runE23 reports the dissemination *distribution*, not just the last
// arrival: the round by which 50%, 90%, 99% and 100% of the nodes hold the
// message. Evaluation sections of dissemination papers report exactly
// these percentiles; the LHGs' advantage grows toward the tail.
func runE23(w io.Writer) error {
	const (
		n = 256
		k = 4
	)
	fmt.Fprintf(w, "n=%d, k=%d, fault-free flood from node 0: round by which X%% are covered\n", n, k)
	fmt.Fprintf(w, "%-10s %-8s %-8s %-8s %-8s %-8s\n", "topology", "p50", "p90", "p99", "p100", "msgs")
	for _, c := range []lhg.Constraint{lhg.Harary, lhg.JD, lhg.KTree, lhg.KDiamond} {
		used, err := nearestFeasible(c, n, k)
		if err != nil {
			return err
		}
		g, err := lhg.Build(expCtx, c, used, k)
		if err != nil {
			return err
		}
		res, err := lhg.Flood(expCtx, g, 0)
		if err != nil {
			return err
		}
		if !res.Complete {
			return fmt.Errorf("%v flood incomplete", c)
		}
		rounds := append([]int(nil), res.FirstHeard...)
		sort.Ints(rounds)
		pct := func(p float64) int { return rounds[int(p*float64(len(rounds)-1))] }
		fmt.Fprintf(w, "%-10s %-8d %-8d %-8d %-8d %-8d\n",
			c, pct(0.50), pct(0.90), pct(0.99), rounds[len(rounds)-1], res.Messages)
	}
	fmt.Fprintln(w, "shape: harary covers the first half quickly (two expanding arcs) but its tail is")
	fmt.Fprintln(w, "linear; the LHG tail ends within 2·log_{k-1}(n) rounds")
	return nil
}

// runE24 drives the overlay through a seeded random churn trace —
// mostly joins with leaves mixed in, like a P2P swarm — and samples
// broadcast availability (with k-1 crashes) during the churn. It reports
// the size trajectory, total maintenance cost, and that availability never
// dipped.
func runE24(w io.Writer) error {
	const (
		k      = 3
		start  = 2 * k
		events = 120
		seed   = 4242
	)
	topo := func(n, kk int) (*graph.Graph, error) { return lhg.Build(expCtx, lhg.KDiamond, n, kk) }
	o, err := overlay.New(k, start, topo)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(seed)
	var (
		joins, leaves, totalChurn int
		maxSize                   = start
		broadcasts, delivered     int
	)
	for e := 0; e < events; e++ {
		var c overlay.Churn
		if rng.Intn(3) == 0 && o.Size() > 2*k {
			c, err = o.Leave()
			leaves++
		} else {
			c, err = o.Join()
			joins++
		}
		if err != nil {
			return err
		}
		totalChurn += c.Total()
		if o.Size() > maxSize {
			maxSize = o.Size()
		}
		// Sample availability every 10 events: broadcast through k-1
		// random crashes.
		if e%10 == 9 {
			fails, err := flood.RandomNodeFailures(o.Graph(), 0, k-1, rng)
			if err != nil {
				return err
			}
			res, err := o.Broadcast(0, fails)
			if err != nil {
				return err
			}
			broadcasts++
			if res.Complete {
				delivered++
			}
		}
	}
	fmt.Fprintf(w, "churn trace: %d events (%d joins, %d leaves), seed %d\n", events, joins, leaves, seed)
	fmt.Fprintf(w, "size: start %d, peak %d, final %d\n", start, maxSize, o.Size())
	fmt.Fprintf(w, "maintenance: %d link operations total (%.1f per event)\n",
		totalChurn, float64(totalChurn)/float64(events))
	fmt.Fprintf(w, "availability: %d/%d sampled broadcasts delivered to every alive member\n",
		delivered, broadcasts)
	if delivered != broadcasts {
		return fmt.Errorf("availability dipped during churn")
	}
	fmt.Fprintln(w, "the f <= k-1 delivery guarantee held at every sampled point of the trace")
	return nil
}

package graph

import (
	"sync"

	"lhg/internal/obs"
)

// Pool telemetry: gets counts every scratch checkout, misses counts the
// ones the pool had to allocate for. hits = gets - misses; a healthy
// steady state is all hits.
var (
	mScratchGets   = obs.NewCounter("graph.scratch.gets")
	mScratchMisses = obs.NewCounter("graph.scratch.misses")
)

// scratch is the reusable per-traversal working set: a distance array and a
// BFS queue. Traversals Get one from the pool, run, and Put it back, so
// steady-state BFS probes (Connected, ConnectedIgnoring, Diameter,
// AvgPathLength and the flow-layer reachability sweeps) allocate nothing.
// Buffers only ever grow; a scratch recycled from a larger graph serves a
// smaller one without reallocation.
type scratch struct {
	dist  []int32
	queue []int32
}

var scratchPool = sync.Pool{New: func() any {
	mScratchMisses.Inc()
	return new(scratch)
}}

// getScratch returns a scratch with dist sized (and reset to -1) for n
// nodes and an empty queue of capacity >= n.
func getScratch(n int) *scratch {
	mScratchGets.Inc()
	s := scratchPool.Get().(*scratch)
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]int32, 0, n)
	}
	s.dist = s.dist[:n]
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.queue = s.queue[:0]
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// bfsInto runs a BFS from src over g writing hop distances into s.dist
// (which must be pre-set to -1) and returns the number of nodes reached,
// including src. Out-of-range sources reach nothing.
func (g *Graph) bfsInto(src int, s *scratch) int {
	if src < 0 || src >= g.Order() {
		return 0
	}
	s.dist[src] = 0
	s.queue = append(s.queue[:0], int32(src))
	reached := 1
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		du := s.dist[u]
		for _, v := range g.row(int(u)) {
			if s.dist[v] < 0 {
				s.dist[v] = du + 1
				s.queue = append(s.queue, v)
				reached++
			}
		}
	}
	return reached
}

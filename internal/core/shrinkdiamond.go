package core

import "fmt"

// Shrink retires the youngest node (label n−1) and returns the edge surgery
// performed, in canonical form — the exact inverse of the previous Grow.
// See shrink.go for the state-machine dispatch rationale.
func (gr *KDiamondGrower) Shrink() (EdgeDelta, error) {
	if gr.N() <= 2*gr.k {
		return EdgeDelta{}, notConstructible("K-DIAMOND", gr.N()-1, gr.k,
			fmt.Sprintf("cannot shrink below the minimal graph n = 2k = %d", 2*gr.k))
	}
	var d EdgeDelta
	var err error
	switch {
	case len(gr.added) > 0:
		d, err = shrinkLeaf(gr.g, &gr.added, gr.queue)
	case len(gr.group) > 0:
		d, err = gr.unformGroup()
	default:
		d, err = gr.undissolveGroup()
	}
	d.Normalize()
	return d, err
}

// unformGroup undoes Part 2 (α odd → even): the pending clique dissolves
// back into the oldest base leaf, the k−2 waiting added leaves and the
// departing joiner. Member i currently holds exactly one tree link — to
// parents[i], its unique neighbor outside the clique — which pins down the
// parent set of the base leaf being restored.
func (gr *KDiamondGrower) unformGroup() (EdgeDelta, error) {
	k := gr.k
	members := gr.group
	joiner := members[k-1]
	if joiner != gr.N()-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: youngest node %d is not the clique joiner %d", gr.N()-1, joiner)
	}
	inGroup := make(map[int]bool, k)
	for _, m := range members {
		inGroup[m] = true
	}
	parents := make([]int, k)
	for i, m := range members {
		up := -1
		for _, nb := range gr.g.Neighbors(m) {
			if !inGroup[nb] {
				if up >= 0 {
					return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: clique member %d has two tree links", m)
				}
				up = nb
			}
		}
		if up < 0 {
			return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: clique member %d has no tree link", m)
		}
		parents[i] = up
	}
	var d EdgeDelta
	// Drop the clique and the joiner's single tree link, retire the joiner.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			removeEdgeInto(&d, gr.g, members[i], members[j])
		}
	}
	removeEdgeInto(&d, gr.g, joiner, parents[k-1])
	if err := gr.g.RemoveLastNode(); err != nil {
		return EdgeDelta{}, err
	}
	// Restore the base leaf s = members[0] and the added leaves
	// members[1..k−2]: each reattaches to every parent it had dropped.
	for i := 0; i < k-1; i++ {
		for j := 0; j < k; j++ {
			if j != i {
				addEdgeInto(&d, gr.g, members[i], parents[j])
			}
		}
	}
	gr.added = append([]int(nil), members[1:k-1]...)
	gr.queue = append([]pendingLeaf{{node: members[0], parents: parents}}, gr.queue...)
	gr.group = nil
	return d, nil
}

// undissolveGroup undoes Part 3 (α even → odd): the newest shared-leaf
// level reverts to waiting added leaves on the current front, the departing
// joiner is retired, and the internal copies become a pending clique again.
func (gr *KDiamondGrower) undissolveGroup() (EdgeDelta, error) {
	k := gr.k
	if len(gr.queue) < k-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: %d pending leaves after a dissolve", len(gr.queue))
	}
	level := gr.queue[len(gr.queue)-(k-1):]
	members := level[0].parents
	children := make([]int, k-1)
	for i, pl := range level {
		children[i] = pl.node
	}
	if children[k-2] != gr.N()-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: youngest node %d is not the newest leaf %d", gr.N()-1, children[k-2])
	}
	var d EdgeDelta
	// Tear the level down and retire the joiner.
	for _, child := range children {
		for _, m := range members {
			removeEdgeInto(&d, gr.g, m, child)
		}
	}
	gr.queue = gr.queue[:len(gr.queue)-(k-1)]
	if err := gr.g.RemoveLastNode(); err != nil {
		return EdgeDelta{}, err
	}
	if len(gr.queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: no front leaf to host restored added leaves")
	}
	// The surviving children become waiting added leaves on the current
	// front again, and the members reform their clique.
	host := gr.queue[0].parents
	for _, c := range children[:k-2] {
		for _, p := range host {
			addEdgeInto(&d, gr.g, c, p)
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			addEdgeInto(&d, gr.g, members[i], members[j])
		}
	}
	gr.added = append([]int(nil), children[:k-2]...)
	gr.group = members
	return d, nil
}

package trace

import (
	"context"
	"testing"
)

// BenchmarkTraceDisabled pins the disabled-path cost of the full span
// lifecycle: one atomic load and a branch, zero allocations. The hot
// loops (flow probes, netflood rounds) call this on every iteration, so
// any regression here is a regression everywhere.
func BenchmarkTraceDisabled(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c2, sp := StartSpan(ctx, "hot")
		sp.Event("tick")
		sp.End()
		_ = c2
	}
	if testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "hot")
		sp.Event("tick")
		sp.End()
	}) != 0 {
		b.Fatal("disabled span lifecycle must not allocate")
	}
}

// BenchmarkTraceEnabled measures the recording path: span start + end
// into the lock-striped ring.
func BenchmarkTraceEnabled(b *testing.B) {
	Enable()
	defer Disable()
	rec := NewRecorder(4096)
	ctx, root := StartRoot(context.Background(), "bench", WithRecorder(rec))
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot")
		sp.End()
	}
}

// BenchmarkTraceEnabledParallel exercises stripe contention.
func BenchmarkTraceEnabledParallel(b *testing.B) {
	Enable()
	defer Disable()
	rec := NewRecorder(4096)
	ctx, root := StartRoot(context.Background(), "bench", WithRecorder(rec))
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, sp := StartSpan(ctx, "hot")
			sp.End()
		}
	})
}

// BenchmarkFromContextDisabled pins the lookup cost alone.
func BenchmarkFromContextDisabled(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FromContext(ctx)
	}
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestArticulationPointsPath(t *testing.T) {
	aps := path(5).ArticulationPoints()
	want := []int{1, 2, 3}
	if len(aps) != len(want) {
		t.Fatalf("articulation points = %v, want %v", aps, want)
	}
	for i := range want {
		if aps[i] != want[i] {
			t.Fatalf("articulation points = %v, want %v", aps, want)
		}
	}
}

func TestArticulationPointsCycleNone(t *testing.T) {
	if aps := cycle(6).ArticulationPoints(); len(aps) != 0 {
		t.Fatalf("cycle has articulation points %v", aps)
	}
}

func TestArticulationPointsTwoTriangles(t *testing.T) {
	// Triangles {0,1,2} and {3,4,5} joined by bridge (2,3).
	g := MustFromEdges(6, []Edge{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	aps := g.ArticulationPoints()
	if len(aps) != 2 || aps[0] != 2 || aps[1] != 3 {
		t.Fatalf("articulation points = %v, want [2 3]", aps)
	}
	bridges := g.Bridges()
	if len(bridges) != 1 || (bridges[0] != Edge{U: 2, V: 3}) {
		t.Fatalf("bridges = %v, want [(2,3)]", bridges)
	}
}

func TestBridgesPathAll(t *testing.T) {
	bridges := path(4).Bridges()
	if len(bridges) != 3 {
		t.Fatalf("path bridges = %v, want every edge", bridges)
	}
}

func TestBridgesStarAll(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.MustAddEdge(0, v)
	}
	g := b.Freeze()
	if len(g.Bridges()) != 4 {
		t.Fatal("every star edge is a bridge")
	}
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 0 {
		t.Fatalf("star articulation points = %v, want [0]", aps)
	}
}

func TestCutpointsDisconnectedGraph(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 1 {
		t.Fatalf("articulation points = %v, want [1]", aps)
	}
	if len(g.Bridges()) != 3 {
		t.Fatalf("bridges = %v, want all 3 edges", g.Bridges())
	}
}

// Brute-force oracles.
func bruteArticulation(g *Graph) []int {
	n := g.Order()
	base := len(g.Components())
	var out []int
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		removed[v] = true
		// Count components among the surviving nodes.
		comps := 0
		seen := make([]bool, n)
		for s := 0; s < n; s++ {
			if removed[s] || seen[s] {
				continue
			}
			comps++
			stack := []int{s}
			seen[s] = true
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range g.Neighbors(u) {
					if !seen[w] && !removed[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
		}
		// v's removal also removes the singleton component it may have
		// been; compare against base adjusted for isolated v.
		adjust := 0
		if g.Degree(v) == 0 {
			adjust = 1
		}
		if comps > base-adjust {
			out = append(out, v)
		}
		removed[v] = false
	}
	return out
}

func bruteBridges(g *Graph) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		h := g.WithoutEdge(e.U, e.V)
		if h.BFSFrom(e.U)[e.V] < 0 {
			out = append(out, e)
		}
	}
	return out
}

func TestPropertyCutpointsMatchBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		g := randomGraph(n, uint64(seed))
		gotA := g.ArticulationPoints()
		wantA := bruteArticulation(g)
		if len(gotA) != len(wantA) {
			return false
		}
		for i := range wantA {
			if gotA[i] != wantA[i] {
				return false
			}
		}
		gotB := g.Bridges()
		wantB := bruteBridges(g)
		if len(gotB) != len(wantB) {
			return false
		}
		for i := range wantB {
			if gotB[i] != wantB[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCutpointsAgreeWithKConnectivityOnLHGs(t *testing.T) {
	// Any 2-connected graph (in particular every built LHG) has no
	// articulation points and no bridges.
	b := cycle(12).Thaw()
	b.MustAddEdge(0, 6)
	b.MustAddEdge(3, 9)
	g := b.Freeze()
	if len(g.ArticulationPoints()) != 0 || len(g.Bridges()) != 0 {
		t.Fatal("chorded cycle is 2-connected")
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// POST /v1/verify?batch — the coalescing batch API.
//
// The body is either a plain array of VerifyRequest objects or a sweep
// spec whose n/k lists expand to their cross product:
//
//	[{"constraint":"ktree","n":12,"k":3}, ...]
//	{"constraint":"ktree","n":[8,12,16],"k":[2,3]}
//
// All items run as ONE pipelined campaign under the request's single trace
// root: items fan out concurrently (bounded), identical items coalesce
// through the ordinary singleflight — in-process and, with a store
// attached, fleet-wide — and each item reports its own result or error
// envelope, so one bad item never fails the sweep. On a shard frontend the
// same body is split by ring ownership and fanned out backend-by-backend
// (see proxy.go).
var (
	mBatchRequests = obs.NewCounter("serve.batch.requests")
	mBatchItems    = obs.NewCounter("serve.batch.items")
	mBatchFailed   = obs.NewCounter("serve.batch.failed")
)

// maxBatchItems caps one batch after sweep expansion.
const maxBatchItems = 4096

// batchFan bounds the concurrently running items of one batch.
const batchFan = 8

// SweepSpec is the compact batch form: the cross product of N × K, each
// item sharing the remaining fields.
type SweepSpec struct {
	Constraint string   `json:"constraint"`
	N          []int    `json:"n"`
	K          []int    `json:"k"`
	Seed       *uint64  `json:"seed,omitempty"`
	Properties []string `json:"properties,omitempty"`
	Workers    int      `json:"workers,omitempty"`
}

// BatchItem pairs one expanded request with its outcome: exactly one of
// Response and Error is set.
type BatchItem struct {
	Request  VerifyRequest   `json:"request"`
	Response *VerifyResponse `json:"response,omitempty"`
	Error    *ErrorBody      `json:"error,omitempty"`
}

// BatchResponse reports the whole campaign: per-item outcomes in request
// order plus the aggregate counters and the shared trace root.
type BatchResponse struct {
	Total   int         `json:"total"`
	Failed  int         `json:"failed"`
	Cached  int         `json:"cached"`
	TraceID string      `json:"trace_id,omitempty"`
	Items   []BatchItem `json:"items"`
}

// expand turns the sweep into its item list.
func (sw *SweepSpec) expand() ([]VerifyRequest, error) {
	if len(sw.N) == 0 || len(sw.K) == 0 {
		return nil, fmt.Errorf("serve: sweep needs non-empty n and k lists")
	}
	reqs := make([]VerifyRequest, 0, len(sw.N)*len(sw.K))
	for _, n := range sw.N {
		for _, k := range sw.K {
			req := VerifyRequest{Workers: sw.Workers, Properties: sw.Properties}
			req.Constraint = sw.Constraint
			req.N = n
			req.K = k
			req.Seed = sw.Seed
			reqs = append(reqs, req)
		}
	}
	return reqs, nil
}

// decodeBatch reads the body and expands it into the item list, accepting
// both batch forms (the first non-space byte disambiguates).
func decodeBatch(r *http.Request) ([]VerifyRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("serve: empty batch body")
	}
	var reqs []VerifyRequest
	if trimmed[0] == '[' {
		if err := strictUnmarshal(trimmed, &reqs); err != nil {
			return nil, err
		}
	} else {
		var sw SweepSpec
		if err := strictUnmarshal(trimmed, &sw); err != nil {
			return nil, err
		}
		if reqs, err = sw.expand(); err != nil {
			return nil, err
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: batch expanded to zero items")
	}
	if len(reqs) > maxBatchItems {
		return nil, fmt.Errorf("serve: batch of %d items exceeds the %d cap", len(reqs), maxBatchItems)
	}
	return reqs, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// runBatch executes the expanded items as one campaign: bounded fan-out,
// per-item outcomes, shared trace root from ctx. Item validation happens
// inside verifyOne, so a malformed item yields its own error envelope
// without touching its siblings.
func (s *Server) runBatch(ctx context.Context, reqs []VerifyRequest) *BatchResponse {
	resp := &BatchResponse{Total: len(reqs), Items: make([]BatchItem, len(reqs))}
	if sp := trace.FromContext(ctx); sp.Live() {
		resp.TraceID = sp.TraceID().String()
	}
	sem := make(chan struct{}, batchFan)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			item := &resp.Items[i]
			item.Request = reqs[i]
			out, err := s.verifyOne(ctx, &reqs[i])
			if err != nil {
				body := errorBody(nil, err)
				item.Error = &body
				return
			}
			item.Response = out
		}(i)
	}
	wg.Wait()
	for i := range resp.Items {
		switch {
		case resp.Items[i].Error != nil:
			resp.Failed++
		case resp.Items[i].Response.Cached:
			resp.Cached++
		}
	}
	mBatchItems.Add(int64(resp.Total))
	mBatchFailed.Add(int64(resp.Failed))
	return resp
}

// handleVerifyBatch serves POST /v1/verify?batch on a backend (or
// standalone) server; the shard frontend intercepts the route in proxy.go.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	done := s.track(epVerify)
	mBatchRequests.Inc()
	reqs, err := decodeBatch(r)
	if err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	resp := s.runBatch(r.Context(), reqs)
	done(false, start)
	writeJSON(w, http.StatusOK, resp)
}

package netflood

import (
	"math"
	"testing"
	"time"
)

// TestWithDefaultsNormalizesEveryField pins the normalization contract
// field by field: zero means "use the default", negative or inconsistent
// values are clamped instead of flowing into the backoff shift and the
// budget arithmetic unchecked.
func TestWithDefaultsNormalizesEveryField(t *testing.T) {
	cases := []struct {
		name  string
		in    Options
		check func(t *testing.T, o Options)
	}{
		{"negative handshake timeout", Options{HandshakeTimeout: -time.Second},
			func(t *testing.T, o Options) {
				if o.HandshakeTimeout != 5*time.Second {
					t.Fatalf("HandshakeTimeout = %v", o.HandshakeTimeout)
				}
			}},
		{"negative write timeout", Options{WriteTimeout: -1},
			func(t *testing.T, o Options) {
				if o.WriteTimeout != 2*time.Second {
					t.Fatalf("WriteTimeout = %v", o.WriteTimeout)
				}
			}},
		{"negative retransmit base", Options{RetransmitBase: -time.Minute},
			func(t *testing.T, o Options) {
				if o.RetransmitBase != 15*time.Millisecond {
					t.Fatalf("RetransmitBase = %v", o.RetransmitBase)
				}
			}},
		{"negative retransmit max", Options{RetransmitMax: -1},
			func(t *testing.T, o Options) {
				if o.RetransmitMax != 250*time.Millisecond {
					t.Fatalf("RetransmitMax = %v", o.RetransmitMax)
				}
			}},
		{"max below base is raised to base", Options{RetransmitBase: time.Second, RetransmitMax: time.Millisecond},
			func(t *testing.T, o Options) {
				if o.RetransmitMax != time.Second {
					t.Fatalf("RetransmitMax = %v, want %v", o.RetransmitMax, time.Second)
				}
			}},
		{"unset max inherits a larger base", Options{RetransmitBase: 3 * time.Second},
			func(t *testing.T, o Options) {
				if o.RetransmitMax != 3*time.Second {
					t.Fatalf("RetransmitMax = %v, want 3s", o.RetransmitMax)
				}
			}},
		{"negative max retries", Options{MaxRetries: -7},
			func(t *testing.T, o Options) {
				if o.MaxRetries != 12 {
					t.Fatalf("MaxRetries = %d", o.MaxRetries)
				}
			}},
		{"negative max reconnects", Options{MaxReconnects: -1},
			func(t *testing.T, o Options) {
				if o.MaxReconnects != 3 {
					t.Fatalf("MaxReconnects = %d", o.MaxReconnects)
				}
			}},
		{"negative hop budget disables", Options{HopBudget: -4},
			func(t *testing.T, o Options) {
				if o.HopBudget != 0 {
					t.Fatalf("HopBudget = %d", o.HopBudget)
				}
			}},
		{"negative retry budget disables", Options{RetryBudget: -4},
			func(t *testing.T, o Options) {
				if o.RetryBudget != 0 {
					t.Fatalf("RetryBudget = %d", o.RetryBudget)
				}
			}},
		{"negative rate disables", Options{RetransmitRate: -2},
			func(t *testing.T, o Options) {
				if o.RetransmitRate != 0 {
					t.Fatalf("RetransmitRate = %g", o.RetransmitRate)
				}
			}},
		{"NaN rate disables", Options{RetransmitRate: math.NaN()},
			func(t *testing.T, o Options) {
				if o.RetransmitRate != 0 {
					t.Fatalf("RetransmitRate = %g", o.RetransmitRate)
				}
			}},
		{"Inf rate disables", Options{RetransmitRate: math.Inf(1)},
			func(t *testing.T, o Options) {
				if o.RetransmitRate != 0 {
					t.Fatalf("RetransmitRate = %g", o.RetransmitRate)
				}
			}},
		{"rate without burst defaults burst to MaxRetries", Options{RetransmitRate: 5, MaxRetries: 9},
			func(t *testing.T, o Options) {
				if o.RetransmitBurst != 9 {
					t.Fatalf("RetransmitBurst = %d, want 9", o.RetransmitBurst)
				}
			}},
		{"no rate leaves burst untouched", Options{RetransmitBurst: -3},
			func(t *testing.T, o Options) {
				if o.RetransmitRate != 0 || o.RetransmitBurst != -3 {
					t.Fatalf("burst normalized without a rate: %+v", o)
				}
			}},
		{"negative path diversity disables", Options{PathDiversity: -1},
			func(t *testing.T, o Options) {
				if o.PathDiversity != 0 {
					t.Fatalf("PathDiversity = %d", o.PathDiversity)
				}
			}},
		{"zero seed defaults", Options{},
			func(t *testing.T, o Options) {
				if o.Seed != 1 {
					t.Fatalf("Seed = %d", o.Seed)
				}
			}},
		{"explicit values survive", Options{RetransmitBase: 7 * time.Millisecond, RetransmitMax: 90 * time.Millisecond, MaxRetries: 4, HopBudget: 6, RetryBudget: 8, RetransmitRate: 2.5, RetransmitBurst: 3, PathDiversity: 4},
			func(t *testing.T, o Options) {
				if o.RetransmitBase != 7*time.Millisecond || o.RetransmitMax != 90*time.Millisecond ||
					o.MaxRetries != 4 || o.HopBudget != 6 || o.RetryBudget != 8 ||
					o.RetransmitRate != 2.5 || o.RetransmitBurst != 3 || o.PathDiversity != 4 {
					t.Fatalf("explicit options overwritten: %+v", o)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.in
			o.withDefaults()
			tc.check(t, o)
		})
	}
}

// TestBackoffForOverflowGuard pins the shift-overflow fallback the old
// retransmit loop relied on implicitly: enormous attempt counts (and the
// nonsensical ones below 1) must clamp to the configured bounds instead of
// shifting into a negative duration.
func TestBackoffForOverflowGuard(t *testing.T) {
	base, max := 15*time.Millisecond, 250*time.Millisecond
	if got := backoffFor(base, max, 1); got != base {
		t.Fatalf("attempt 1: %v, want %v", got, base)
	}
	if got := backoffFor(base, max, 2); got != 2*base {
		t.Fatalf("attempt 2: %v, want %v", got, 2*base)
	}
	if got := backoffFor(base, max, 5); got != 16*base {
		t.Fatalf("attempt 5: %v, want %v", got, 16*base)
	}
	if got := backoffFor(base, max, 6); got != max {
		t.Fatalf("attempt 6 (past cap): %v, want %v", got, max)
	}
	for _, attempt := range []int{40, 62, 63, 1 << 20, math.MaxInt} {
		if got := backoffFor(base, max, attempt); got != max {
			t.Fatalf("attempt %d: %v, want cap %v", attempt, got, max)
		}
	}
	for _, attempt := range []int{0, -1, math.MinInt} {
		if got := backoffFor(base, max, attempt); got != base {
			t.Fatalf("attempt %d: %v, want base %v", attempt, got, base)
		}
	}
	// A base large enough that even one doubling overflows still clamps.
	huge := time.Duration(math.MaxInt64 / 2)
	if got := backoffFor(huge, huge, 3); got != huge {
		t.Fatalf("overflowing shift: %v, want %v", got, huge)
	}
}

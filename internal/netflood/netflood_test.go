package netflood

import (
	"testing"
	"time"

	"lhg/internal/core"
	"lhg/internal/graph"
)

// collect drains the delivery stream until every one of `want` deliveries
// arrived or the deadline passes, returning per-node delivery counts.
func collect(t *testing.T, c *Cluster, want int) map[int]int {
	t.Helper()
	counts := make(map[int]int)
	// Deliveries carry no node id; count via Delivered polling instead.
	deadline := time.After(10 * time.Second)
	for {
		total := 0
		for i := 0; i < c.Size(); i++ {
			n := len(c.Delivered(i))
			counts[i] = n
			total += n
		}
		if total >= want {
			return counts
		}
		select {
		case <-deadline:
			t.Fatalf("timed out: %d of %d deliveries", total, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestStartRejectsEmptyTopology(t *testing.T) {
	if _, err := Start(graph.New(0)); err == nil {
		t.Fatal("empty topology must error")
	}
}

func TestBroadcastReachesEveryNodeOverTCP(t *testing.T) {
	kt, err := core.BuildKTree(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	msg, err := c.Broadcast(0, "over the wire")
	if err != nil {
		t.Fatal(err)
	}
	counts := collect(t, c, 12)
	for i := 0; i < 12; i++ {
		if counts[i] != 1 {
			t.Fatalf("node %d delivered %d messages, want 1", i, counts[i])
		}
		// Delivered copies carry their hop count, so compare identity and
		// payload rather than the whole struct.
		got := c.Delivered(i)
		if got[0].Src != msg.Src || got[0].Seq != msg.Seq || got[0].Payload != msg.Payload {
			t.Fatalf("node %d delivered %+v, want %+v", i, got[0], msg)
		}
		if i != 0 && got[0].Hops == 0 {
			t.Fatalf("node %d delivered with 0 hops", i)
		}
	}
}

func TestMultipleBroadcastsAllDelivered(t *testing.T) {
	kt, err := core.BuildKDiamond(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	const rounds = 5
	for r := 0; r < rounds; r++ {
		src := r % c.Size()
		if _, err := c.Broadcast(src, "m"); err != nil {
			t.Fatal(err)
		}
	}
	counts := collect(t, c, rounds*c.Size())
	for i := 0; i < c.Size(); i++ {
		if counts[i] != rounds {
			t.Fatalf("node %d delivered %d, want %d", i, counts[i], rounds)
		}
	}
}

func TestBroadcastUnknownNode(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	c, err := Start(g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(9, "x"); err == nil {
		t.Fatal("unknown source must error")
	}
}

func TestDeliveredOutOfRange(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	c, err := Start(g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if c.Delivered(-1) != nil || c.Delivered(5) != nil {
		t.Fatal("out-of-range Delivered must be nil")
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	c, err := Start(g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	a, err := c.Broadcast(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Broadcast(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != a.Seq+1 {
		t.Fatalf("sequence %d then %d", a.Seq, b.Seq)
	}
}

func TestShutdownIsIdempotentAndStopsGoroutines(t *testing.T) {
	kt, err := core.BuildKTree(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Broadcast(0, "x"); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 8)
	c.Shutdown()
	c.Shutdown() // must not panic or deadlock
}

func TestDeliveryStreamCarriesPayloads(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	c, err := Start(g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(1, "payload-x"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for seen := 0; seen < 3; {
		select {
		case m := <-c.Deliveries():
			if m.Payload != "payload-x" || m.Src != 1 {
				t.Fatalf("unexpected delivery %+v", m)
			}
			seen++
		case <-deadline:
			t.Fatal("timed out waiting for deliveries")
		}
	}
}

func TestCrashToleranceOverTCP(t *testing.T) {
	// 4-connected topology, crash 3 nodes, flood from a survivor: every
	// alive node must still deliver — the paper's guarantee over real
	// sockets.
	kt, err := core.BuildKDiamond(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	for _, victim := range []int{3, 8, 14} {
		if !c.CrashNode(victim) {
			t.Fatalf("crash of %d failed", victim)
		}
	}
	if c.CrashNode(3) {
		t.Fatal("double crash must report false")
	}
	if c.CrashNode(99) {
		t.Fatal("out-of-range crash must report false")
	}
	if c.Alive(3) || !c.Alive(0) {
		t.Fatal("alive bookkeeping wrong")
	}

	if _, err := c.Broadcast(0, "survive"); err != nil {
		t.Fatal(err)
	}
	// All 17 survivors must deliver.
	deadline := time.After(10 * time.Second)
	for {
		total := 0
		for i := 0; i < c.Size(); i++ {
			if c.Alive(i) && len(c.Delivered(i)) == 1 {
				total++
			}
		}
		if total == 17 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d of 17 survivors delivered", total)
		case <-time.After(5 * time.Millisecond):
		}
	}
	for _, victim := range []int{3, 8, 14} {
		if len(c.Delivered(victim)) != 0 {
			t.Fatalf("crashed node %d delivered", victim)
		}
	}
}

func TestLiveGrowthOverTCP(t *testing.T) {
	// Drive a real socket cluster with the incremental grower: start at the
	// minimal (2k,k) overlay and admit nodes one at a time by applying the
	// grower's edge deltas to live connections.
	const k = 3
	gr, err := core.NewKTreeGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	c := StartEmpty()
	defer c.Shutdown()
	for i := 0; i < gr.N(); i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range gr.Graph().Edges() {
		if err := c.Connect(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	const target = 16
	for gr.N() < target {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
		delta, err := gr.Grow()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Apply(delta); err != nil {
			t.Fatal(err)
		}
	}
	if c.Size() != target {
		t.Fatalf("cluster size %d, want %d", c.Size(), target)
	}
	// Broadcast from the newest member: it must reach all 16 over the
	// reconfigured sockets.
	if _, err := c.Broadcast(target-1, "grown"); err != nil {
		t.Fatal(err)
	}
	counts := collect(t, c, target)
	for i := 0; i < target; i++ {
		if counts[i] != 1 {
			t.Fatalf("node %d delivered %d, want 1", i, counts[i])
		}
	}
}

func TestConnectDisconnectIdempotence(t *testing.T) {
	c := StartEmpty()
	defer c.Shutdown()
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect(0, 1); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Connect(0, 0); err == nil {
		t.Fatal("self link must error")
	}
	if err := c.Connect(0, 9); err == nil {
		t.Fatal("unknown node must error")
	}
}

func TestDisconnectPartitionsFlood(t *testing.T) {
	// Path 0-1-2; cutting (1,2) isolates 2 from a flood at 0.
	c := StartEmpty()
	defer c.Shutdown()
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Broadcast(0, "cut"); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 2) // nodes 0 and 1 only
	time.Sleep(50 * time.Millisecond)
	if len(c.Delivered(2)) != 0 {
		t.Fatal("node 2 heard through a removed link")
	}
}

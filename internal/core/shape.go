package core

import "fmt"

// shape incrementally builds the abstract tree T shared by every
// construction: start from a root with k base leaf children, then convert
// leaves into internal nodes in creation (BFS) order. Creation order equals
// breadth-first order, so conversions always extend the shallowest level
// first and T stays height-balanced (rule "T is height-balanced").
type shape struct {
	b         *Blueprint
	nextLeaf  int // cursor over positions: next base leaf to convert
	baseChild int // base children per non-root internal node (k-1)
}

// newShape returns the minimal tree: a root with k shared-leaf children.
func newShape(k int) *shape {
	b := &Blueprint{
		K:        k,
		Parent:   []int{-1},
		Children: [][]int{nil},
		Kind:     []PositionKind{Internal},
		Depth:    []int{0},
	}
	b.Added = []bool{false}
	s := &shape{b: b, nextLeaf: 1, baseChild: k - 1}
	for i := 0; i < k; i++ {
		s.addLeaf(0, false)
	}
	return s
}

// addLeaf appends a shared-leaf child under parent p.
func (s *shape) addLeaf(p int, added bool) int {
	b := s.b
	id := len(b.Parent)
	b.Parent = append(b.Parent, p)
	b.Children = append(b.Children, nil)
	b.Kind = append(b.Kind, SharedLeaf)
	b.Depth = append(b.Depth, b.Depth[p]+1)
	b.Added = append(b.Added, added)
	b.Children[p] = append(b.Children[p], id)
	return id
}

// convert turns the next base leaf (in creation order) into an internal
// node with k-1 fresh base leaf children. It fails only if every position
// has already been converted, which callers prevent by sizing.
func (s *shape) convert() error {
	b := s.b
	for s.nextLeaf < len(b.Kind) {
		p := s.nextLeaf
		s.nextLeaf++
		if b.Kind[p] == SharedLeaf && !b.Added[p] {
			b.Kind[p] = Internal
			b.Added[p] = false
			for i := 0; i < s.baseChild; i++ {
				s.addLeaf(p, false)
			}
			return nil
		}
	}
	return fmt.Errorf("core: no leaf left to convert")
}

// aboveLeafNode returns the shallowest position that currently has at least
// one base shared-leaf child — the canonical "node just above the leaves"
// that receives added leaves.
func (s *shape) aboveLeafNode() int {
	b := s.b
	for p := s.nextLeaf; p < len(b.Kind); p++ {
		if b.Kind[p] == SharedLeaf && !b.Added[p] {
			return b.Parent[p]
		}
	}
	// Unreachable for well-formed shapes: conversions always create fresh
	// base leaves, so a base leaf exists beyond the cursor.
	return 0
}

// interiorAboveLeaves returns the non-root internal positions that have at
// least one leaf child, in position order. These are the only nodes the
// Jenkins–Demers rule allows to take extra children.
func (s *shape) interiorAboveLeaves() []int {
	b := s.b
	var out []int
	for p := 1; p < len(b.Kind); p++ {
		if b.Kind[p] != Internal {
			continue
		}
		for _, c := range b.Children[p] {
			if b.Kind[c] != Internal {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// markLastLeafUnshared reclassifies the most recently created base leaf as
// an unshared leaf (K-DIAMOND only).
func (s *shape) markLastLeafUnshared() error {
	b := s.b
	for p := len(b.Kind) - 1; p >= 1; p-- {
		if b.Kind[p] == SharedLeaf && !b.Added[p] {
			b.Kind[p] = UnsharedLeaf
			return nil
		}
	}
	return fmt.Errorf("core: no base shared leaf to mark unshared")
}

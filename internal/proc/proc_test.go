package proc

import (
	"testing"
	"testing/quick"

	"lhg/internal/core"
	"lhg/internal/graph"
	"lhg/internal/harary"
	"lhg/internal/sim"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func ktree(t testing.TB, n, k int) *graph.Graph {
	t.Helper()
	kt, err := core.BuildKTree(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return kt.Real.Graph
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Fatal("nil topology must error")
	}
	if _, err := NewNetwork(graph.New(0)); err == nil {
		t.Fatal("empty topology must error")
	}
	if _, err := NewNetwork(cycle(4), WithCrashAt(9, 1)); err == nil {
		t.Fatal("crash schedule for unknown process must error")
	}
}

func TestBroadcastFaultFreeDeliversEverywhere(t *testing.T) {
	g := ktree(t, 20, 3)
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.Broadcast(0, "hello", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	for id := 0; id < g.Order(); id++ {
		msgs := n.Delivered(id)
		if len(msgs) != 1 || msgs[0].ID != mid || msgs[0].Payload != "hello" {
			t.Fatalf("process %d delivered %v", id, msgs)
		}
	}
	// Unit latency: delivery time equals BFS distance.
	dist := g.BFSFrom(0)
	for id := 0; id < g.Order(); id++ {
		if n.HeardAt(id, mid) != int64(dist[id]) {
			t.Fatalf("process %d heard at %d, BFS distance %d", id, n.HeardAt(id, mid), dist[id])
		}
	}
	// Each process forwards once on every link: 2m transmissions.
	if n.MessagesSent() != 2*g.Size() {
		t.Fatalf("sent %d messages, want %d", n.MessagesSent(), 2*g.Size())
	}
}

func TestBroadcastFromUnknownProcess(t *testing.T) {
	n, err := NewNetwork(cycle(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(7, "x", 0); err == nil {
		t.Fatal("unknown source must error")
	}
}

func TestBroadcastFromCrashedSourceIsLost(t *testing.T) {
	n, err := NewNetwork(cycle(5), WithCrashAt(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(2, "late", 10); err != nil {
		t.Fatal(err)
	}
	n.Run()
	for id := 0; id < 5; id++ {
		if len(n.Delivered(id)) != 0 {
			t.Fatalf("process %d delivered a message from a dead source", id)
		}
	}
}

func TestCrashedProcessStopsReceiving(t *testing.T) {
	// Path 0-1-2-3-4 as a cycle cut: crash 2 before the flood reaches it.
	g := cycle(10)
	n, err := NewNetwork(g, WithCrashAt(3, 1), WithCrashAt(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.Broadcast(0, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	for _, id := range []int{4, 5, 6} {
		if n.HeardAt(id, mid) != -1 {
			t.Fatalf("process %d is behind the cut but delivered", id)
		}
	}
	for _, id := range []int{1, 2, 8, 9} {
		if n.HeardAt(id, mid) == -1 {
			t.Fatalf("process %d should have delivered", id)
		}
	}
	if n.Dropped() == 0 {
		t.Fatal("arrivals at crashed processes must be counted")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	g, err := harary.Build(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(0, "a", 0); err != nil {
		t.Fatal(err)
	}
	n.Run()
	for id := 0; id < g.Order(); id++ {
		if len(n.Delivered(id)) != 1 {
			t.Fatalf("process %d delivered %d copies", id, len(n.Delivered(id)))
		}
	}
}

func TestMultipleConcurrentBroadcasts(t *testing.T) {
	g := ktree(t, 14, 3)
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	var ids []MsgID
	for i := 0; i < 5; i++ {
		mid, err := n.Broadcast(i, "payload", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, mid)
	}
	n.Run()
	for id := 0; id < g.Order(); id++ {
		got := n.DeliveredIDs(id)
		if len(got) != 5 {
			t.Fatalf("process %d delivered %d of 5 broadcasts", id, len(got))
		}
	}
	// Sequence numbers from one source are distinct and increasing.
	seen := map[MsgID]bool{}
	for _, mid := range ids {
		if seen[mid] {
			t.Fatalf("duplicate message id %v", mid)
		}
		seen[mid] = true
	}
}

func TestPerSourceFIFOSequenceNumbers(t *testing.T) {
	n, err := NewNetwork(cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Broadcast(1, "first", 0)
	b, _ := n.Broadcast(1, "second", 0)
	if a.Seq+1 != b.Seq || a.Src != 1 || b.Src != 1 {
		t.Fatalf("sequence numbers %v then %v", a, b)
	}
}

// TestAgreementUnderMidFloodCrashes is the protocol-level headline: on a
// k-connected LHG with at most k-1 crashes at *arbitrary times* (including
// mid-forwarding, forced by a send overhead), the correct processes agree.
func TestAgreementUnderMidFloodCrashes(t *testing.T) {
	g := ktree(t, 30, 4)
	rng := sim.NewRNG(77)
	for trial := 0; trial < 30; trial++ {
		opts := []Option{WithSendOverhead(1)}
		// Crash 3 random non-source processes at random times, some of
		// them right in the middle of the flood.
		for _, v := range rng.Sample(g.Order()-1, 3) {
			opts = append(opts, WithCrashAt(v+1, int64(rng.Intn(12))))
		}
		n, err := NewNetwork(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		mid, err := n.Broadcast(0, "m", 0)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		count, err := n.CheckAgreement(mid)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Validity: source 0 is correct, so everybody correct delivers.
		if count != len(n.Correct()) {
			t.Fatalf("trial %d: validity violated: %d of %d", trial, count, len(n.Correct()))
		}
	}
}

// TestAgreementCanBreakAtKCrashes: with k crashes mid-flood a split is
// possible (not guaranteed); we assert the checker can detect one by
// crashing an entire vertex cut just after it forwards nothing.
func TestAgreementDetectorFindsSplit(t *testing.T) {
	// Path topology: crash the middle node before the flood crosses it;
	// node 0 delivered, node 4 did not -> agreement over correct procs
	// fails only if somebody correct delivered and another did not.
	b := graph.NewBuilder(5)
	for v := 0; v+1 < 5; v++ {
		b.MustAddEdge(v, v+1)
	}
	g := b.Freeze()
	n, err := NewNetwork(g, WithCrashAt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.Broadcast(0, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if _, err := n.CheckAgreement(mid); err == nil {
		t.Fatal("split must be detected on a severed path")
	}
}

func TestSendOverheadPartialForwarding(t *testing.T) {
	// Star center crashes after getting one transmission out: exactly one
	// leaf hears.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	n, err := NewNetwork(g, WithSendOverhead(2), WithCrashAt(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.Broadcast(0, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	heard := 0
	for id := 1; id < 4; id++ {
		if n.HeardAt(id, mid) >= 0 {
			heard++
		}
	}
	if heard != 1 {
		t.Fatalf("%d leaves heard, want exactly 1 (center crashed mid-forward)", heard)
	}
}

func TestCustomLatencyShapesDelivery(t *testing.T) {
	g := cycle(6)
	n, err := NewNetwork(g, WithLatency(func(u, v int) int64 { return 5 }))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.Broadcast(0, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if n.HeardAt(3, mid) != 15 {
		t.Fatalf("opposite node heard at %d, want 15", n.HeardAt(3, mid))
	}
}

func TestAccessorsOutOfRange(t *testing.T) {
	n, err := NewNetwork(cycle(3))
	if err != nil {
		t.Fatal(err)
	}
	if n.Delivered(-1) != nil || n.DeliveredIDs(9) != nil {
		t.Fatal("out-of-range accessors must return nil")
	}
	if n.HeardAt(9, MsgID{}) != -1 {
		t.Fatal("out-of-range HeardAt must return -1")
	}
	if n.Crashed(9) {
		t.Fatal("out-of-range Crashed must be false")
	}
}

// TestPropertyProtocolMatchesTopologicalFlood: with unit latency, no
// overhead and crashes at time 0, the protocol delivers exactly the set the
// round-based simulator reaches.
func TestPropertyProtocolMatchesTopologicalFlood(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		size := int(nRaw%12) + 4
		b := graph.NewBuilder(size)
		state := uint64(seed) | 1
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				if next()%3 == 0 {
					b.MustAddEdge(u, v)
				}
			}
		}
		g := b.Freeze()
		rng := sim.NewRNG(uint64(seed) * 17)
		crashCount := rng.Intn(size / 2)
		var opts []Option
		crashed := map[int]bool{}
		for _, v := range rng.Sample(size-1, crashCount) {
			opts = append(opts, WithCrashAt(v+1, 0))
			crashed[v+1] = true
		}
		n, err := NewNetwork(g, opts...)
		if err != nil {
			return false
		}
		mid, err := n.Broadcast(0, "m", 0)
		if err != nil {
			return false
		}
		n.Run()
		// Survivor-subgraph BFS oracle.
		var alive []graph.Edge
		for _, e := range g.Edges() {
			if !crashed[e.U] && !crashed[e.V] {
				alive = append(alive, e)
			}
		}
		sub := graph.MustFromEdges(size, alive)
		dist := sub.BFSFrom(0)
		for v := 0; v < size; v++ {
			want := int64(dist[v])
			if crashed[v] {
				want = -1
			}
			if n.HeardAt(v, mid) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleRoute(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "26", "-k", "3", "-from", "0", "-to", "25"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "route 0 -> 25") {
		t.Fatalf("missing route header:\n%s", out)
	}
	if !strings.Contains(out, "R0(0)") {
		t.Fatalf("missing labeled source:\n%s", out)
	}
}

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "ktree", "-n", "21", "-k", "3", "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pairs: 420", "mean route length:", "worst stretch:", "bound:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "harary unsupported", args: []string{"-constraint", "harary"}},
		{name: "bad constraint", args: []string{"-constraint", "x"}},
		{name: "unbuildable", args: []string{"-constraint", "ktree", "-n", "5", "-k", "3"}},
		{name: "bad endpoint", args: []string{"-constraint", "ktree", "-n", "10", "-k", "3", "-to", "99"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

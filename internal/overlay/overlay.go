// Package overlay maintains a Logarithmic-Harary-Graph topology over a
// dynamic membership — the peer-to-peer scenario motivating the paper: the
// number of processes n is arbitrary and changes over time, so the topology
// construction must exist for *every* pair (n,k), which is exactly what the
// K-TREE/K-DIAMOND constraints provide (and the original Jenkins–Demers
// rule does not).
//
// On every membership change the overlay rebuilds the canonical topology
// for the new size and reports the edge churn (links torn down and set up),
// the cost a deployment would pay in reconfiguration messages.
package overlay

import (
	"fmt"

	"lhg/internal/flood"
	"lhg/internal/graph"
)

// TopologyFunc builds the overlay topology for n members with connectivity
// target k. The canonical constructions in internal/core satisfy it.
type TopologyFunc func(n, k int) (*graph.Graph, error)

// Churn summarizes the edge difference between two consecutive topologies.
type Churn struct {
	Added   int // links created
	Removed int // links torn down
	Kept    int // links surviving the rebuild
}

// Total returns the number of link operations (setup + teardown).
func (c Churn) Total() int { return c.Added + c.Removed }

// Overlay is a dynamic-membership topology manager. Members are the dense
// ids 0..Size()-1; a leave is modeled as the last member departing (the
// canonical constructions relabel internally anyway, so any-node departure
// costs the same set of edge diffs).
type Overlay struct {
	k        int
	topology TopologyFunc
	g        *graph.Graph
	gen      int
}

// New creates an overlay of initial members using the given topology.
func New(k, initial int, topology TopologyFunc) (*Overlay, error) {
	if topology == nil {
		return nil, fmt.Errorf("overlay: nil topology func")
	}
	g, err := topology(initial, k)
	if err != nil {
		return nil, fmt.Errorf("overlay: initial topology: %w", err)
	}
	return &Overlay{k: k, topology: topology, g: g}, nil
}

// Size returns the current number of members.
func (o *Overlay) Size() int { return o.g.Order() }

// Generation returns how many rebuilds have occurred.
func (o *Overlay) Generation() int { return o.gen }

// Graph returns the current topology. Frozen graphs are immutable, so the
// caller shares the view without a defensive copy.
func (o *Overlay) Graph() *graph.Graph { return o.g }

// K returns the connectivity target.
func (o *Overlay) K() int { return o.k }

// Join grows the membership by one and rebuilds, returning the churn.
func (o *Overlay) Join() (Churn, error) { return o.resize(o.g.Order() + 1) }

// Leave shrinks the membership by one and rebuilds, returning the churn.
func (o *Overlay) Leave() (Churn, error) { return o.resize(o.g.Order() - 1) }

// LeaveNode removes an arbitrary member: the departing id swaps labels with
// the last member (the standard dense-id relabeling) and the topology is
// rebuilt at n-1. The churn accounts for the relabeled node's links too,
// since a deployment must re-point them at the surviving process.
func (o *Overlay) LeaveNode(id int) (Churn, error) {
	n := o.g.Order()
	if id < 0 || id >= n {
		return Churn{}, fmt.Errorf("overlay: unknown member %d", id)
	}
	ng, err := o.topology(n-1, o.k)
	if err != nil {
		return Churn{}, fmt.Errorf("overlay: rebuild at n=%d: %w", n-1, err)
	}
	// Physical-link view of the departure: the departing member's own
	// links are torn down; the last member inherits the freed label (so
	// its surviving links are re-pointed, not recreated); everything else
	// diffs against the new topology.
	last := n - 1
	relabel := func(v int) int {
		if v == last {
			return id
		}
		return v
	}
	var c Churn
	for _, e := range o.g.Edges() {
		if e.U == id || e.V == id {
			c.Removed++ // departing member's links are always torn down
			continue
		}
		u, v := relabel(e.U), relabel(e.V)
		if ng.HasEdge(u, v) {
			c.Kept++
		} else {
			c.Removed++
		}
	}
	c.Added = ng.Size() - c.Kept
	o.g = ng
	o.gen++
	return c, nil
}

// Resize jumps the membership to n members and rebuilds.
func (o *Overlay) Resize(n int) (Churn, error) { return o.resize(n) }

func (o *Overlay) resize(n int) (Churn, error) {
	ng, err := o.topology(n, o.k)
	if err != nil {
		return Churn{}, fmt.Errorf("overlay: rebuild at n=%d: %w", n, err)
	}
	c := diff(o.g, ng)
	o.g = ng
	o.gen++
	return c, nil
}

// Broadcast floods a message from source over the current topology under
// the given failures.
func (o *Overlay) Broadcast(source int, f flood.Failures) (*flood.Result, error) {
	return flood.Run(o.g, source, f)
}

// diff counts the edge changes from old to new, comparing the edges between
// ids present in both.
func diff(oldG, newG *graph.Graph) Churn {
	var c Churn
	for _, e := range oldG.Edges() {
		if newG.HasEdge(e.U, e.V) {
			c.Kept++
		} else {
			c.Removed++
		}
	}
	c.Added = newG.Size() - c.Kept
	return c
}

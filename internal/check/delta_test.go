package check

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"lhg/internal/core"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// reportsMatch asserts bit-identity of two reports, timing phases aside
// (wall clock is not part of the contract).
func reportsMatch(t *testing.T, tag string, got, want *Report) {
	t.Helper()
	g2, w2 := *got, *want
	g2.Phases, w2.Phases = nil, nil
	if !reflect.DeepEqual(&g2, &w2) {
		t.Fatalf("%s: delta report %s differs from full verify %s", tag, got, want)
	}
}

// churnEngine pairs a grower with a DeltaVerifier and drives both through a
// batch, returning the delta-derived and the fresh full report.
func advanceBoth(t *testing.T, gr core.Reconfigurer, dv *DeltaVerifier, batch []core.Change, opt Options) (*Report, *Report) {
	t.Helper()
	d, err := gr.Apply(batch)
	if err != nil {
		t.Fatalf("apply %v: %v", batch, err)
	}
	got, err := dv.Advance(context.Background(), d, gr.N())
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	want, err := VerifyCtx(context.Background(), gr.Graph(), gr.K(), opt)
	if err != nil {
		t.Fatalf("full verify: %v", err)
	}
	return got, want
}

// TestDeltaVerifierMatchesFullUnderChurn: a DeltaVerifier chained through
// mixed join/leave batches produces, at every epoch, a report bit-identical
// to a fresh full verification — across batch boundaries, irregular
// intermediate sizes, growth and shrink.
func TestDeltaVerifierMatchesFullUnderChurn(t *testing.T) {
	J, L := core.ChangeJoin, core.ChangeLeave
	batches := [][]core.Change{
		{J}, {J, J, J}, {L}, {L, L}, {J, L, J}, {J, J, J, J, J},
		{L, L, L, L}, {J}, {L, J, J, L, L}, {J, J}, {L}, {L, L, L},
	}
	for _, name := range []string{"ktree", "kdiamond"} {
		k := 3
		var gr core.Reconfigurer
		var err error
		if name == "ktree" {
			gr, err = core.NewKTreeGrowerAt(k, 18)
		} else {
			gr, err = core.NewKDiamondGrowerAt(k, 18)
		}
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Workers: 1}
		dv, err := NewDeltaVerifier(context.Background(), gr.Graph(), k, opt)
		if err != nil {
			t.Fatal(err)
		}
		for bi, batch := range batches {
			got, want := advanceBoth(t, gr, dv, batch, opt)
			reportsMatch(t, name, got, want)
			if bi == 0 && got.K != k {
				t.Fatalf("%s: report k=%d, want %d", name, got.K, k)
			}
		}
	}
}

// TestDeltaVerifierFastPathFires: healthy shrink and leaf-growth epochs must
// take the localized fast path, not fall back — the entire point of the
// incremental verifier. Asserted through the metrics counters.
func TestDeltaVerifierFastPathFires(t *testing.T) {
	obs.Enable()
	k := 3
	gr, err := core.NewKTreeGrowerAt(k, 22)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 1}
	dv, err := NewDeltaVerifier(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pure leaves: the probe view is the final healthy graph, so every
	// localized probe meets c = δ and the fast path must fire.
	fast0 := mDeltaFastPaths.Value()
	got, want := advanceBoth(t, gr, dv, []core.Change{core.ChangeLeave, core.ChangeLeave, core.ChangeLeave, core.ChangeLeave}, opt)
	reportsMatch(t, "pure leaves", got, want)
	if mDeltaFastPaths.Value() != fast0+1 {
		t.Fatal("pure-leave epoch did not take the fast path")
	}
	// A pure leaf-addition join (no restructure at this size) removes no
	// edges: zero probes, greedy attachment — fast path again.
	fast0 = mDeltaFastPaths.Value()
	pairs0 := mDeltaPairs.Value()
	got, want = advanceBoth(t, gr, dv, []core.Change{core.ChangeJoin}, opt)
	reportsMatch(t, "leaf join", got, want)
	if mDeltaFastPaths.Value() != fast0+1 {
		t.Fatal("leaf-join epoch did not take the fast path")
	}
	if mDeltaPairs.Value() != pairs0 {
		t.Fatalf("leaf join planned %d pair probes, want 0", mDeltaPairs.Value()-pairs0)
	}
}

// TestDeltaVerifierAdjacentDepartures: batched leaves tear out several
// labels at once — including mutually adjacent ones, which the probe
// planner must treat as one departed component (boundary pairs, not
// per-node pairs). K-DIAMOND's clique phases make adjacency likely.
func TestDeltaVerifierAdjacentDepartures(t *testing.T) {
	k := 4
	gr, err := core.NewKDiamondGrowerAt(k, 2*k+13)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 1}
	dv, err := NewDeltaVerifier(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]core.Change, 9)
	for i := range batch {
		batch[i] = core.ChangeLeave
	}
	got, want := advanceBoth(t, gr, dv, batch, opt)
	reportsMatch(t, "batched departures", got, want)
}

// TestDeltaVerifierFastPathOnRestructureJoins pins the property the churn
// benchmark relies on: a batch of joins large enough to restructure the
// overlay (removing edges whose connectivity role the admitted nodes take
// over) still resolves on the fast path, because probes run in the final
// graph and the admitted-label components pass the subset-expansion check.
// A regression that reintroduces fallbacks here silently turns the 30×
// delta speedup back into a full re-verification; this test makes it loud.
func TestDeltaVerifierFastPathOnRestructureJoins(t *testing.T) {
	obs.Enable()
	k := 3
	gr, err := core.NewKTreeGrowerAt(k, 102) // grid-regular: n = 2 + 4t
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 1}
	dv, err := NewDeltaVerifier(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]core.Change, 8)
	for i := range batch {
		batch[i] = core.ChangeJoin
	}
	d, err := gr.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	// The join batch at this size must actually remove edges — if the
	// overlay stopped restructuring, this test would stop testing the case.
	if len(d.Removed) == 0 {
		t.Fatal("join batch removed no edges; restructure case not exercised")
	}
	fast0 := mDeltaFastPaths.Value()
	fall0 := mDeltaFallbacks.Value()
	got, err := dv.Advance(context.Background(), d, gr.N())
	if err != nil {
		t.Fatal(err)
	}
	want, err := VerifyCtx(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	reportsMatch(t, "restructure joins", got, want)
	if mDeltaFastPaths.Value() != fast0+1 || mDeltaFallbacks.Value() != fall0 {
		t.Fatalf("restructure-join batch fell back to full verification (fastpaths %d->%d, fallbacks %d->%d)",
			fast0, mDeltaFastPaths.Value(), fall0, mDeltaFallbacks.Value())
	}
}

// TestVerifyDeltaFallsBackOnDamage: a delta that actually disconnects the
// graph cannot pass the localized probes; the verifier must fall back and
// the report must equal the full verification of the damaged graph.
func TestVerifyDeltaFallsBackOnDamage(t *testing.T) {
	obs.Enable()
	// C8: κ = λ = δ = 2.
	var es []graph.Edge
	for i := 0; i < 8; i++ {
		es = append(es, graph.Edge{U: i, V: (i + 1) % 8})
	}
	d0 := graph.EdgeDelta{Added: es}
	d0.Normalize()
	g, err := graph.FromEdges(8, d0.Added)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Verify(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tear out two opposite edges: the cycle splits into two paths.
	cut := graph.EdgeDelta{Removed: []graph.Edge{{U: 0, V: 1}, {U: 4, V: 5}}}
	fb0 := mDeltaFallbacks.Value()
	got, err := VerifyDelta(context.Background(), g, prev, cut, 8, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mDeltaFallbacks.Value() != fb0+1 {
		t.Fatal("disconnecting delta must fall back to the full campaign")
	}
	next, err := g.ApplyDelta(cut, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := VerifyCtx(context.Background(), next, 2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reportsMatch(t, "disconnecting delta", got, want)
	if got.NodeConnectivity != 0 || got.Diameter != -1 {
		t.Fatalf("damaged graph must report κ=0 diam=-1, got %s", got)
	}
}

// TestVerifyDeltaPartialPropsFallsBack: the fast path only serves full
// reports; property-selected runs must defer to VerifyCtx untouched.
func TestVerifyDeltaPartialPropsFallsBack(t *testing.T) {
	obs.Enable()
	k := 3
	gr, err := core.NewKTreeGrowerAt(k, 14)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 1, Props: PropDiameter}
	prev, err := VerifyCtx(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	d, err := gr.Grow()
	if err != nil {
		t.Fatal(err)
	}
	fb0 := mDeltaFallbacks.Value()
	got, err := VerifyDelta(context.Background(), g, prev, d, gr.N(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if mDeltaFallbacks.Value() != fb0+1 {
		t.Fatal("partial-props delta verify must fall back")
	}
	want, err := VerifyCtx(context.Background(), gr.Graph(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	reportsMatch(t, "partial props", got, want)
}

// TestVerifyDeltaRandomGraphs: differential sweep on random (irregular,
// messy) graphs and random deltas — whatever path is taken, the report
// equals a fresh full verification.
func TestVerifyDeltaRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(10)
		var es []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					es = append(es, graph.Edge{U: u, V: v})
				}
			}
		}
		d0 := graph.EdgeDelta{Added: es}
		d0.Normalize()
		g, err := graph.FromEdges(n, d0.Added)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(3)
		prev, err := Verify(g, k)
		if err != nil {
			t.Fatal(err)
		}
		var d graph.EdgeDelta
		for _, e := range g.Edges() {
			if rng.Float64() < 0.2 {
				d.Removed = append(d.Removed, e)
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) && rng.Float64() < 0.05 {
					d.Added = append(d.Added, graph.Edge{U: u, V: v})
				}
			}
		}
		d.Normalize()
		got, err := VerifyDelta(context.Background(), g, prev, d, n, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		next, err := g.ApplyDelta(d, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := VerifyCtx(context.Background(), next, k, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		reportsMatch(t, "random trial", got, want)
	}
}

// TestDeltaVerifierKeepsEpochOnError: a rejected delta leaves the verifier
// on its previous graph and report, still able to advance.
func TestDeltaVerifierKeepsEpochOnError(t *testing.T) {
	k := 3
	gr, err := core.NewKTreeGrowerAt(k, 14)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewDeltaVerifier(context.Background(), gr.Graph(), k, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := dv.Report()
	bad := graph.EdgeDelta{Removed: []graph.Edge{{U: 0, V: 13}}}
	if !gr.Graph().HasEdge(0, 13) {
		bad.Removed[0] = graph.Edge{U: 99, V: 100} // out of range instead
	}
	bad.Added = []graph.Edge{{U: 200, V: 201}} // definitely invalid
	if _, err := dv.Advance(context.Background(), bad, 14); err == nil {
		t.Fatal("invalid delta must error")
	}
	if dv.Report() != before {
		t.Fatal("failed advance must keep the previous epoch")
	}
	d, err := gr.Grow()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dv.Advance(context.Background(), d, gr.N())
	if err != nil {
		t.Fatalf("advance after failed epoch: %v", err)
	}
	want, err := VerifyCtx(context.Background(), gr.Graph(), k, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reportsMatch(t, "post-error epoch", got, want)
}

//go:build !race

package lhg_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false

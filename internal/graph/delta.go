package graph

import (
	"fmt"
	"sort"
)

// EdgeDelta is the edge surgery of one reconfiguration step (or a merged
// batch of steps): the links set up and torn down, each listed exactly once
// with U < V. Deltas produced by the churn engine in internal/core are
// canonical — both slices sorted by (U,V) with no overlap between Added and
// Removed — so JSON encodings and diff-shaped API responses are
// byte-deterministic across runs.
type EdgeDelta struct {
	Added   []Edge
	Removed []Edge
}

// Total returns the number of link operations in the delta.
func (d EdgeDelta) Total() int { return len(d.Added) + len(d.Removed) }

// Empty reports whether the delta performs no link operation.
func (d EdgeDelta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Normalize sorts Added and Removed canonically by (U,V), orients every
// edge U < V, and cancels pairs that appear in both lists (an edge set up
// and torn down within one batch is no operation at all). Every delta
// returned by the core growers is already normalized; callers assembling
// deltas by hand should call this before handing them to ApplyDelta.
func (d *EdgeDelta) Normalize() {
	d.Added = canonEdges(d.Added)
	d.Removed = canonEdges(d.Removed)
	if len(d.Added) == 0 || len(d.Removed) == 0 {
		return
	}
	// Cancel edges present in both (both slices are now sorted and unique).
	inBoth := make(map[Edge]bool)
	i, j := 0, 0
	for i < len(d.Added) && j < len(d.Removed) {
		switch {
		case edgeLess(d.Added[i], d.Removed[j]):
			i++
		case edgeLess(d.Removed[j], d.Added[i]):
			j++
		default:
			inBoth[d.Added[i]] = true
			i++
			j++
		}
	}
	if len(inBoth) == 0 {
		return
	}
	keep := func(es []Edge) []Edge {
		out := es[:0]
		for _, e := range es {
			if !inBoth[e] {
				out = append(out, e)
			}
		}
		return out
	}
	d.Added = keep(d.Added)
	d.Removed = keep(d.Removed)
}

// canonEdges orients (U < V), sorts by (U,V) and removes duplicates.
func canonEdges(es []Edge) []Edge {
	if len(es) == 0 {
		return es
	}
	for i, e := range es {
		if e.U > e.V {
			es[i] = Edge{U: e.V, V: e.U}
		}
	}
	sort.Slice(es, func(i, j int) bool { return edgeLess(es[i], es[j]) })
	out := es[:1]
	for _, e := range es[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Touched returns the sorted set of node ids incident to any added or
// removed edge — the frontier an incremental re-verification must examine.
func (d EdgeDelta) Touched() []int {
	seen := make(map[int]bool, 2*d.Total())
	for _, e := range d.Added {
		seen[e.U], seen[e.V] = true, true
	}
	for _, e := range d.Removed {
		seen[e.U], seen[e.V] = true, true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ApplyDelta produces the frozen graph that results from applying d to g
// and resizing the node set to n (n > g.Order() admits new isolated-then-
// wired nodes; n < g.Order() drops departed top labels, whose links must
// all appear in d.Removed). Only the adjacency rows of touched nodes are
// rebuilt — untouched rows are block-copied without re-sorting — so the
// patch work is O(changed edges + touched-row degrees) on top of the flat
// O(n+m) copy every immutable view costs.
//
// The delta must be exact: removing an absent edge, adding a present one,
// adding an edge out of [0,n), or leaving a departed node with live links
// is an error (callers diffing real topologies rely on this strictness).
func (g *Graph) ApplyDelta(d EdgeDelta, n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	oldN := g.Order()
	// Per-node patch lists. Nodes >= n may appear as removal endpoints
	// (departures); additions must stay inside the new node range.
	type patch struct {
		add, del []int32
	}
	patches := make(map[int]*patch, 2*d.Total())
	at := func(v int) *patch {
		p := patches[v]
		if p == nil {
			p = &patch{}
			patches[v] = p
		}
		return p
	}
	for _, e := range d.Removed {
		if e.U < 0 || e.V < 0 || e.U >= oldN || e.V >= oldN {
			return nil, fmt.Errorf("graph: delta removes edge (%d,%d) outside [0,%d)", e.U, e.V, oldN)
		}
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: delta removes absent edge (%d,%d)", e.U, e.V)
		}
		at(e.U).del = append(at(e.U).del, int32(e.V))
		at(e.V).del = append(at(e.V).del, int32(e.U))
	}
	for _, e := range d.Added {
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return nil, fmt.Errorf("graph: delta adds edge (%d,%d) outside [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: delta adds self-loop on node %d", e.U)
		}
		if e.U < oldN && e.V < oldN && g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: delta adds duplicate edge (%d,%d)", e.U, e.V)
		}
		at(e.U).add = append(at(e.U).add, int32(e.V))
		at(e.V).add = append(at(e.V).add, int32(e.U))
	}
	// Departed nodes must end isolated: every live link has to be torn
	// down by the delta or the shrink would corrupt surviving rows.
	for v := n; v < oldN; v++ {
		p := patches[v]
		deg := g.Degree(v)
		if p == nil && deg == 0 {
			continue
		}
		if p == nil || len(p.add) > 0 || len(p.del) != deg {
			torn := 0
			if p != nil {
				torn = len(p.del)
			}
			return nil, fmt.Errorf("graph: delta drops node %d but leaves %d of its %d links",
				v, deg-torn, deg)
		}
	}

	h := &Graph{off: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		deg := 0
		if v < oldN {
			deg = g.Degree(v)
		}
		if p := patches[v]; p != nil {
			deg += len(p.add) - len(p.del)
			if deg < 0 {
				return nil, fmt.Errorf("graph: delta drives node %d to negative degree", v)
			}
		}
		total += deg
		h.off[v+1] = int32(total)
	}
	h.nbr = make([]int32, total)
	h.edges = total / 2
	for v := 0; v < n; v++ {
		dst := h.nbr[h.off[v]:h.off[v+1]]
		var src []int32
		if v < oldN {
			src = g.row(v)
		}
		p := patches[v]
		if p == nil {
			copy(dst, src)
			continue
		}
		sortInt32(p.add)
		sortInt32(p.del)
		// Merge: src minus del, interleaved with add, keeping sorted order.
		w, ai, di := 0, 0, 0
		for _, x := range src {
			for ai < len(p.add) && p.add[ai] < x {
				dst[w] = p.add[ai]
				w++
				ai++
			}
			if di < len(p.del) && p.del[di] == x {
				di++
				continue
			}
			dst[w] = x
			w++
		}
		for ai < len(p.add) {
			dst[w] = p.add[ai]
			w++
			ai++
		}
		if w != len(dst) || di != len(p.del) {
			return nil, fmt.Errorf("graph: inconsistent delta at node %d", v)
		}
	}
	return h, nil
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

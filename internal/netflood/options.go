package netflood

import (
	"time"

	"lhg/internal/faultnet"
)

// Options configures a cluster's transport and protocol behavior. The zero
// value is the original fail-stop cluster: best-effort forwarding, clean
// TCP, no acks. Every duration has a safe default, so callers set only what
// they need.
type Options struct {
	// HandshakeTimeout bounds Connect: the dial plus the wait for the
	// acceptor to process the hello. Default 5s.
	HandshakeTimeout time.Duration

	// WriteTimeout is the per-frame write deadline on every link. A write
	// that cannot complete in this window fails (and, in reliable mode, is
	// retried by the retransmit path). Default 2s.
	WriteTimeout time.Duration

	// DeliveryBuffer sizes the cluster-wide delivery channel. When the
	// channel is full, further deliveries are counted and dropped
	// (netflood.msgs.dropped) rather than stalling the flood; per-node
	// Delivered logs are unaffected. Default: 64 per starting node for
	// Start, 4096 for StartEmpty.
	DeliveryBuffer int

	// Reliable switches every link to the acked protocol: per-message
	// acks, retransmission with exponential backoff and jitter, peer
	// health via a missed-ack threshold, and automatic reconnection with
	// graceful degradation when a peer is declared dead.
	Reliable bool

	// RetransmitBase is the first retransmission delay; each further
	// attempt doubles it up to RetransmitMax, with ±25% jitter. Defaults
	// 15ms and 250ms.
	RetransmitBase time.Duration
	RetransmitMax  time.Duration

	// MaxRetries is the missed-ack threshold: after this many unacked
	// retransmissions of any message, the peer is suspected and the link
	// is redialed. Default 12.
	MaxRetries int

	// MaxReconnects bounds redials per peer; past it the peer is declared
	// dead, its link is torn down and its pending traffic abandoned — the
	// cluster degrades gracefully to the crash model. Default 3.
	MaxReconnects int

	// Faults, when non-nil, supplies a faultnet.Plan per directed link
	// (from, to): writes from node `from` on its link to node `to` pass
	// through the plan. Asymmetric partitions are plans that differ per
	// direction. Inactive plans leave the link clean.
	Faults func(from, to int) faultnet.Plan

	// Seed drives all fault injection and retransmission jitter. Default 1.
	Seed uint64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.RetransmitBase <= 0 {
		o.RetransmitBase = 15 * time.Millisecond
	}
	if o.RetransmitMax <= 0 {
		o.RetransmitMax = 250 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 12
	}
	if o.MaxReconnects <= 0 {
		o.MaxReconnects = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

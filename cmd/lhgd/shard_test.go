package main

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"lhg/internal/serve"
	"lhg/internal/store"
)

// TestShardedDaemonEndToEnd drives the full deployment shape the CI smoke
// exercises with real processes: two backend daemons over one store
// directory, one frontend routing across them. A batch sweep completes,
// half the fleet dies, the next sweep still completes via reroute, and a
// restarted backend replays the store warm.
func TestShardedDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *store.Store {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	startBackend := func() (*daemon, context.CancelFunc) {
		ctx, stop := context.WithCancel(context.Background())
		d, err := startDaemon(ctx, serve.Options{BaseContext: ctx, CacheSize: 64, Store: openStore()}, "127.0.0.1:0")
		if err != nil {
			stop()
			t.Fatal(err)
		}
		return d, stop
	}

	b1, stop1 := startBackend()
	b2, stop2 := startBackend()
	alive2 := true
	defer func() {
		stop1()
		stop2()
		if alive2 {
			_ = b2.Shutdown()
		}
	}()

	front, _ := startTestDaemon(t, serve.Options{
		CacheSize:     16,
		Shards:        []string{b1.Addr(), b2.Addr()},
		ProbeInterval: 50 * time.Millisecond,
	})

	sweep := func(ns []int) serve.BatchResponse {
		t.Helper()
		parts := make([]string, len(ns))
		for i, n := range ns {
			parts[i] = fmt.Sprintf("%d", n)
		}
		body := fmt.Sprintf(`{"constraint":"ktree","n":[%s],"k":[3],"properties":["P1"]}`, strings.Join(parts, ","))
		var resp serve.BatchResponse
		if status := post(t, front+"/v1/verify?batch", body, &resp); status != 200 {
			t.Fatalf("batch status %d", status)
		}
		return resp
	}

	first := sweep([]int{14, 21, 28, 35})
	if first.Failed != 0 || first.Total != 4 {
		t.Fatalf("first sweep: total/failed = %d/%d", first.Total, first.Failed)
	}

	// Kill one backend hard; the frontend must reroute its arcs.
	stop2()
	if err := b2.Shutdown(); err != nil {
		t.Fatalf("kill backend: %v", err)
	}
	alive2 = false

	second := sweep([]int{42, 49, 56, 63})
	if second.Failed != 0 || second.Total != 4 {
		t.Fatalf("post-kill sweep: total/failed = %d/%d — reroute did not cover the dead backend", second.Total, second.Failed)
	}

	// A restarted backend (fresh process state, same store dir) replays the
	// persisted reports warm: cached=true without recomputation.
	b3, stop3 := startBackend()
	defer func() { stop3(); _ = b3.Shutdown() }()
	var replay serve.VerifyResponse
	if status := post(t, "http://"+b3.Addr()+"/v1/verify",
		`{"constraint":"ktree","n":42,"k":3,"properties":["P1"]}`, &replay); status != 200 {
		t.Fatalf("replay status %d", status)
	}
	if !replay.Cached {
		t.Fatal("restarted backend must answer cached=true from the shared store")
	}
}

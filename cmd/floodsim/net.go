package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"lhg/internal/ampguard"
	"lhg/internal/faultnet"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/netflood"
	"lhg/internal/obs"
	"lhg/internal/sim"
)

// netConfig carries the -net chaos-harness flags.
type netConfig struct {
	reliable bool
	guard    bool
	k        int
	loss     float64
	dup      float64
	delayMax time.Duration
	linkFail bool
	wait     time.Duration
}

// runNet floods over a real loopback TCP cluster instead of the simulator:
// it computes the failure set (random or adversarial, nodes or links),
// predicts the delivery gap with the simulator, injects the same failures
// plus the configured link faults at the socket layer, and reports whether
// the cluster matched the prediction — the CLI face of the chaos harness.
func runNet(out io.Writer, name string, g *graph.Graph, source, failCount int,
	mode string, seed uint64, rng *sim.RNG, asJSON bool, cfg netConfig) error {
	var fails flood.Failures
	var err error
	switch {
	case cfg.linkFail && mode == "random":
		fails, err = flood.RandomLinkFailures(g, failCount, rng)
	case cfg.linkFail:
		fails, err = flood.AdversarialLinkFailures(g, source, failCount)
	case mode == "random":
		fails, err = flood.RandomNodeFailures(g, source, failCount, rng)
	default:
		fails, err = flood.AdversarialNodeFailures(g, source, failCount)
	}
	if err != nil {
		return err
	}
	unreached, err := flood.Unreached(g, source, fails)
	if err != nil {
		return err
	}

	plan := faultnet.Plan{Drop: cfg.loss, Dup: cfg.dup}
	if cfg.delayMax > 0 {
		plan.Delay = 1
		plan.DelayMax = cfg.delayMax
	}
	opts := netflood.Options{
		Reliable: cfg.reliable,
		Seed:     seed,
	}
	if plan.Active() {
		opts.Faults = func(int, int) faultnet.Plan { return plan }
	}

	// -guard: run the static analyzer on the intact topology and apply the
	// derived enforcement plan, so the run below cannot cost more than the
	// report's frame ceiling no matter what the links do.
	var report *ampguard.Report
	if cfg.guard {
		report, err = ampguard.Analyze(context.Background(), g, source, cfg.k, ampguard.DefaultPolicy())
		if err != nil {
			return err
		}
		gu := report.Guard()
		opts.HopBudget = gu.HopBudget
		opts.RetryBudget = gu.RetryBudget
		opts.RetransmitRate = gu.RetransmitRate
		opts.RetransmitBurst = gu.RetransmitBurst
		opts.PathDiversity = gu.PathDiversity
	}

	// The chaos counters are the run's observable evidence; collect them
	// regardless of the -metrics flag. Counters are process-global, so the
	// report diffs against a baseline taken here — the budget verdict must
	// price this run, not the process's lifetime.
	obs.Enable()
	base := obs.Counters()
	c, err := netflood.StartWithOptions(g, opts)
	if err != nil {
		return err
	}
	defer c.Shutdown()
	for _, v := range fails.Nodes {
		c.CrashNode(v)
	}
	for _, e := range fails.Links {
		if err := c.Disconnect(e.U, e.V); err != nil {
			return err
		}
	}

	severed := make(map[int]bool, len(unreached))
	for _, v := range unreached {
		severed[v] = true
	}
	crashed := make(map[int]bool, len(fails.Nodes))
	for _, v := range fails.Nodes {
		crashed[v] = true
	}
	var expect []int
	for v := 0; v < g.Order(); v++ {
		if !crashed[v] && !severed[v] {
			expect = append(expect, v)
		}
	}

	start := time.Now()
	if _, err := c.Broadcast(source, "chaos"); err != nil {
		return err
	}
	complete := c.WaitDelivered(expect, 1, cfg.wait)
	elapsed := time.Since(start)
	if cfg.reliable && plan.Active() {
		// Delivery converges through flood redundancy faster than the
		// first backoff fires; let the ack/retransmit exchange settle so
		// the recovery counters reflect the loss the run actually took.
		time.Sleep(250 * time.Millisecond)
	}

	// The severed side must stay silent; any delivery there means the
	// socket layer disagrees with the simulator's cut.
	leaked := 0
	for _, v := range unreached {
		if len(c.Delivered(v)) != 0 {
			leaked++
		}
	}
	delivered := 0
	for _, v := range expect {
		if len(c.Delivered(v)) != 0 {
			delivered++
		}
	}
	ctr := obs.Counters()
	for metric, v := range base {
		ctr[metric] -= v
	}
	framesTotal := ctr["netflood.frames.sent"] + ctr["netflood.frames.retransmitted"]

	if asJSON {
		res := map[string]any{
			"topology":      name,
			"n":             g.Order(),
			"k_edges":       g.Size(),
			"mode":          mode,
			"link_failures": cfg.linkFail,
			"failed_nodes":  fails.Nodes,
			"failed_links":  len(fails.Links),
			"reliable":      cfg.reliable,
			"loss":          cfg.loss,
			"dup":           cfg.dup,
			"delay_max_ms":  cfg.delayMax.Milliseconds(),
			"expected":      len(expect),
			"delivered":     delivered,
			"unreachable":   len(unreached),
			"leaked":        leaked,
			"complete":      complete && leaked == 0,
			"elapsed_ms":    elapsed.Milliseconds(),
			"retransmits":   ctr["netflood.frames.retransmitted"],
			"acks":          ctr["netflood.acks.received"],
			"reconnects":    ctr["netflood.links.reconnected"],
			"dead_peers":    ctr["netflood.peers.dead"],
			"frames_lost":   ctr["faultnet.frames.dropped"],
			"frames_total":  framesTotal,
			"guarded":       cfg.guard,
		}
		if report != nil {
			res["frame_ceiling"] = report.FrameCeiling
			res["deferred"] = ctr["netflood.retransmit.deferred"]
			res["budget_exhausted"] = ctr["netflood.retransmit.budget_exhausted"]
			res["repair_deferred"] = ctr["netflood.repair.deferred"]
		}
		if err := json.NewEncoder(out).Encode(res); err != nil {
			return err
		}
		if report != nil && framesTotal > report.FrameCeiling {
			return fmt.Errorf("frame ceiling violated: %d frames sent, analyzer ceiling %d", framesTotal, report.FrameCeiling)
		}
		return nil
	}
	fmt.Fprintf(out, "topology:    %s, %d nodes, %d edges (real TCP sockets)\n", name, g.Order(), g.Size())
	if cfg.linkFail {
		fmt.Fprintf(out, "failures:    %d links (%s)\n", len(fails.Links), mode)
	} else {
		fmt.Fprintf(out, "failures:    %v (%s)\n", fails.Nodes, mode)
	}
	fmt.Fprintf(out, "link faults: loss=%.2f dup=%.2f delay<=%s reliable=%t\n",
		cfg.loss, cfg.dup, cfg.delayMax, cfg.reliable)
	fmt.Fprintf(out, "delivered:   %d/%d expected nodes in %s\n", delivered, len(expect), elapsed.Round(time.Millisecond))
	if len(unreached) > 0 {
		fmt.Fprintf(out, "severed:     %d nodes beyond the cut, %d leaked\n", len(unreached), leaked)
	}
	fmt.Fprintf(out, "recovery:    %d retransmits, %d acks, %d reconnects, %d dead peers, %d frames lost\n",
		ctr["netflood.frames.retransmitted"], ctr["netflood.acks.received"],
		ctr["netflood.links.reconnected"], ctr["netflood.peers.dead"], ctr["faultnet.frames.dropped"])
	if report != nil {
		fmt.Fprintf(out, "budget:      %d/%d frames against the static ceiling (%d deferred, %d budget-exhausted, %d repairs deferred)\n",
			framesTotal, report.FrameCeiling, ctr["netflood.retransmit.deferred"],
			ctr["netflood.retransmit.budget_exhausted"], ctr["netflood.repair.deferred"])
	}
	fmt.Fprintf(out, "complete:    %t\n", complete && leaked == 0)
	if !complete {
		return fmt.Errorf("delivery incomplete: %d of %d expected nodes after %s", delivered, len(expect), cfg.wait)
	}
	if report != nil && framesTotal > report.FrameCeiling {
		return fmt.Errorf("frame ceiling violated: %d frames sent, analyzer ceiling %d", framesTotal, report.FrameCeiling)
	}
	return nil
}

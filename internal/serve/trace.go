package serve

import (
	"net/http"
	"time"

	"lhg/internal/obs/trace"
)

// Request tracing. Every request entering the server through Handler()
// gets a root span named after its route; an incoming W3C traceparent
// header joins the caller's trace instead of minting a fresh id, and the
// response always carries both the id (X-Trace-Id, the grep handle) and a
// standards-shaped Traceparent header naming the server-side span, so a
// client can stitch the hop into its own trace. When tracing is disabled
// the middleware is a single atomic load.

// traced wraps next with the per-request root span and structured access
// log.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !trace.Enabled() {
			next.ServeHTTP(w, r)
			return
		}
		var opts []trace.RootOption
		if tid, sid, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			opts = append(opts, trace.WithParent(tid, sid))
		}
		ctx, sp := trace.StartRoot(r.Context(), "http "+r.URL.Path, opts...)
		if sp.Live() {
			sp.SetAttr(trace.Str("method", r.Method))
			w.Header().Set("X-Trace-Id", sp.TraceID().String())
			w.Header().Set("Traceparent", trace.Traceparent(sp.TraceID(), sp.ID()))
		}
		start := time.Now()
		next.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
		s.log.DebugContext(ctx, "request",
			"method", r.Method, "path", r.URL.Path,
			"dur_ms", float64(time.Since(start))/1e6)
	})
}

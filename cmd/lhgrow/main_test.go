package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "kdiamond", "-k", "3", "-joins", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	lastN := 0
	for sc.Scan() {
		var rec joinRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if rec.N <= lastN {
			t.Fatalf("sizes must increase: %d after %d", rec.N, lastN)
		}
		lastN = rec.N
		if len(rec.Added) == 0 {
			t.Fatalf("every join adds links: %+v", rec)
		}
		lines++
	}
	if lines != 6 {
		t.Fatalf("got %d JSON lines, want 6", lines)
	}
	if lastN != 12 {
		t.Fatalf("final n = %d, want 12", lastN)
	}
}

func TestRunRegularFlagMatchesTheorem(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "kdiamond", "-k", "3", "-joins", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec joinRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		// Theorem 6 at k=3: regular iff n even.
		if rec.Regular != (rec.N%2 == 0) {
			t.Fatalf("n=%d regular=%t contradicts Theorem 6", rec.N, rec.Regular)
		}
	}
}

func TestRunSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "ktree", "-k", "4", "-joins", "50", "-summary"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"constraint: ktree", "final n: 58", "mean churn:", "max churn:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{") {
		t.Fatal("summary mode must not emit JSON lines")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad grower", args: []string{"-constraint", "harary"}},
		{name: "bad k", args: []string{"-constraint", "ktree", "-k", "2"}},
		{name: "negative joins", args: []string{"-joins", "-1"}},
		{name: "bad flag", args: []string{"-zap"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

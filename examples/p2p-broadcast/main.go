// P2P broadcast under churn: the scenario that motivates constraint-based
// LHG construction. Peers join and leave an overlay whose topology is
// rebuilt as a K-DIAMOND LHG after every membership change — possible for
// every size n >= 2k, which is exactly what the original Jenkins–Demers
// rule could not provide. After each change the overlay broadcasts and the
// example asserts full delivery despite k-1 crashed peers.
//
//	go run ./examples/p2p-broadcast
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/overlay"
	"lhg/internal/sim"
)

func main() {
	const k = 3

	o, err := overlay.New(k, 2*k, func(n, k int) (*graph.Graph, error) {
		return lhg.Build(context.Background(), lhg.KDiamond, n, k)
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRNG(2024)

	fmt.Printf("%-6s %-8s %-10s %-8s %-8s %-10s\n",
		"step", "members", "churn", "rounds", "msgs", "delivered")
	for step := 1; step <= 30; step++ {
		// Churn: mostly joins, occasional leaves (never below 2k).
		var c overlay.Churn
		if rng.Intn(4) == 0 && o.Size() > 2*k {
			c, err = o.Leave()
		} else {
			c, err = o.Join()
		}
		if err != nil {
			log.Fatal(err)
		}

		// Crash k-1 random peers and broadcast from a random survivor.
		n := o.Size()
		crashes, err := flood.RandomNodeFailures(o.Graph(), 0, k-1, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := o.Broadcast(0, crashes)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Complete {
			log.Fatalf("step %d: broadcast lost peers despite f <= k-1: %v", step, res)
		}
		fmt.Printf("%-6d %-8d %-10d %-8d %-8d %d/%d\n",
			step, n, c.Total(), res.Rounds, res.Messages, res.Reached, res.Alive)
	}
	fmt.Println("every broadcast reached every alive peer (k-1 crash tolerance held under churn)")
}

// Package flood simulates deterministic flooding over a topology in the
// presence of crash and link failures — the application Logarithmic Harary
// Graphs were designed for (Jenkins & Demers, ICDCS 2001).
//
// The model is round-synchronous: in round r every node that first learned
// the message in round r-1 forwards it to all of its alive neighbors over
// all alive links. The simulator reports the number of rounds until no new
// node learns the message, the total messages sent, and the coverage (which
// alive nodes were reached). On a k-connected graph, flooding reaches every
// alive node despite any f <= k-1 node or link failures; the diameter of the
// surviving topology bounds the latency — logarithmic for LHGs, linear for
// classic Harary graphs.
package flood

import (
	"context"
	"fmt"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Flood telemetry, published once per run (not per message): total
// point-to-point messages, duplicates (messages received by nodes that
// already held the payload), rounds to quiescence, and a per-node delivery
// latency histogram in rounds.
var (
	mFloodRuns       = obs.NewCounter("flood.runs")
	mFloodMessages   = obs.NewCounter("flood.messages")
	mFloodDuplicates = obs.NewCounter("flood.duplicates")
	hFloodRounds     = obs.NewHistogram("flood.rounds", 1, 2, 4, 8, 16, 32, 64, 128)
	hFloodDelivery   = obs.NewHistogram("flood.delivery.rounds", 1, 2, 4, 8, 16, 32, 64, 128)
)

// Failures describes the fault environment of one flood run. The zero value
// is the failure-free environment.
type Failures struct {
	// Nodes lists crashed nodes: they neither receive nor forward.
	Nodes []int
	// Links lists failed undirected links: no message crosses them.
	Links []graph.Edge
}

// Result captures the outcome of one flood.
type Result struct {
	Source   int
	Rounds   int  // rounds until quiescence (0 if nobody else is alive)
	Messages int  // total point-to-point messages sent
	Reached  int  // alive nodes holding the message at the end (incl. source)
	Alive    int  // alive nodes at the start (incl. source)
	Complete bool // every alive node was reached
	// FirstHeard[v] is the round in which v first received the message
	// (0 for the source, -1 for nodes never reached or crashed).
	FirstHeard []int
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("flood(src=%d rounds=%d msgs=%d reached=%d/%d complete=%t)",
		r.Source, r.Rounds, r.Messages, r.Reached, r.Alive, r.Complete)
}

// Run floods the message from source over g under the given failures.
// The source must be alive.
func Run(g *graph.Graph, source int, f Failures) (*Result, error) {
	return RunCtx(context.Background(), g, source, f)
}

// RunCtx is Run under a context: cancellation is polled once per flood
// round (each round is O(frontier·degree) work, so a canceled simulation
// stops within one round) and surfaces as ctx.Err().
func RunCtx(ctx context.Context, g *graph.Graph, source int, f Failures) (*Result, error) {
	n := g.Order()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("flood: source %d out of range [0,%d)", source, n)
	}
	crashed := make([]bool, n)
	for _, v := range f.Nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("flood: crashed node %d out of range [0,%d)", v, n)
		}
		crashed[v] = true
	}
	if crashed[source] {
		return nil, fmt.Errorf("flood: source %d is crashed", source)
	}
	linkDown := make(map[graph.Edge]bool, len(f.Links))
	for _, e := range f.Links {
		linkDown[normalize(e)] = true
	}

	res := &Result{Source: source, FirstHeard: make([]int, n)}
	for v := range res.FirstHeard {
		res.FirstHeard[v] = -1
	}
	for v := 0; v < n; v++ {
		if !crashed[v] {
			res.Alive++
		}
	}

	res.FirstHeard[source] = 0
	res.Reached = 1
	frontier := []int{source}
	for round := 1; len(frontier) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []int
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if crashed[v] || linkDown[normalize(graph.Edge{U: u, V: v})] {
					continue
				}
				res.Messages++
				if res.FirstHeard[v] < 0 {
					res.FirstHeard[v] = round
					res.Reached++
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			res.Rounds = round
		}
		frontier = next
	}
	res.Complete = res.Reached == res.Alive
	mFloodRuns.Inc()
	mFloodMessages.Add(int64(res.Messages))
	// Every counted message was received by an alive node; all but the
	// first delivery at each non-source node were duplicates.
	mFloodDuplicates.Add(int64(res.Messages - (res.Reached - 1)))
	if obs.Enabled() {
		hFloodRounds.Observe(int64(res.Rounds))
		for _, round := range res.FirstHeard {
			if round > 0 {
				hFloodDelivery.Observe(int64(round))
			}
		}
	}
	return res, nil
}

func normalize(e graph.Edge) graph.Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

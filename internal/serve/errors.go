package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"lhg"
	"lhg/internal/obs/trace"
)

// Unified error envelope. Every /v1 route answers failures with one shape:
//
//	{"error": {"code": "...", "message": "...", "trace_id": "..."}}
//
// The code is a stable machine-readable class (clients switch on it; the
// HTTP status is its coarser projection), the message is the human
// diagnostic, and the trace id — present whenever tracing is on — is the
// grep handle into /debug/trace for the request that failed.

// ErrorBody is the envelope payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorEnvelope is the uniform error response of every /v1 route.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Error codes and their one fixed status each. The mapping is pinned by
// TestErrorEnvelopeEveryRoute.
const (
	CodeBadRequest       = "bad_request"         // 400: malformed body/params
	CodeNotFound         = "not_found"           // 404: unknown session
	CodeMethodNotAllowed = "method_not_allowed"  // 405: wrong verb (Allow header set)
	CodeConflict         = "conflict"            // 409: epoch/stream races
	CodeNotConstructible = "not_constructible"   // 422: impossible (n,k)
	CodeTooManySessions  = "too_many_sessions"   // 429: session cap reached
	CodeClientClosed     = "client_closed"       // 499: caller went away
	CodeInternal         = "internal"            // 500: unclassified server fault
	CodeBackendDown      = "backend_unavailable" // 502: no shard could serve
	CodeTimeout          = "timeout"             // 504: computation deadline
)

// apiError pins an explicit (status, code) onto an error. Handlers wrap
// client-fault errors with badRequest and friends; anything unwrapped is
// classified by sentinel below.
type apiError struct {
	status int
	code   string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func badRequest(err error) error { return &apiError{http.StatusBadRequest, CodeBadRequest, err} }
func notFound(err error) error   { return &apiError{http.StatusNotFound, CodeNotFound, err} }
func conflict(err error) error   { return &apiError{http.StatusConflict, CodeConflict, err} }
func tooManySessions(err error) error {
	return &apiError{http.StatusTooManyRequests, CodeTooManySessions, err}
}
func backendDown(err error) error { return &apiError{http.StatusBadGateway, CodeBackendDown, err} }

// classify maps err onto its (status, code): an explicit apiError wins,
// then the shared sentinels. The table is the single source of the
// status mapping for every route.
func classify(err error) (int, string) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status, ae.code
	case errors.Is(err, lhg.ErrNotConstructible):
		return http.StatusUnprocessableEntity, CodeNotConstructible
	case errors.Is(err, errEpochConflict):
		return http.StatusConflict, CodeConflict
	case errors.Is(err, errUnknownSession):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, errSessionLimit):
		return http.StatusTooManyRequests, CodeTooManySessions
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeTimeout
	case errors.Is(err, context.Canceled):
		return 499, CodeClientClosed // nginx convention: client closed request
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// errorBody builds the envelope payload for err in the context of r.
func errorBody(r *http.Request, err error) ErrorBody {
	_, code := classify(err)
	body := ErrorBody{Code: code, Message: err.Error()}
	if r != nil {
		if sp := trace.FromContext(r.Context()); sp.Live() {
			body.TraceID = sp.TraceID().String()
		}
	}
	return body
}

// writeError answers r with the enveloped err at its classified status.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, _ := classify(err)
	writeJSON(w, status, ErrorEnvelope{Error: errorBody(r, err)})
}

// notAllowed answers 405 with the route's Allow set.
func (s *Server) notAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	w.Header().Set("Allow", allow)
	err := fmt.Errorf("serve: %s does not allow %s (allow: %s)", r.URL.Path, r.Method, allow)
	writeJSON(w, http.StatusMethodNotAllowed, ErrorEnvelope{Error: ErrorBody{
		Code: CodeMethodNotAllowed, Message: err.Error(), TraceID: errorBody(r, err).TraceID,
	}})
}

// Command lhgen generates a Logarithmic Harary Graph (or the classic Harary
// baseline) and writes it as DOT, JSON or a plain statistics summary.
//
// Usage:
//
//	lhgen -constraint kdiamond -n 50 -k 4 -format dot > topo.dot
//	lhgen -constraint ktree -n 21 -k 3 -format json
//	lhgen -constraint harary -n 40 -k 4 -format stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lhg"
	"lhg/internal/core"
	"lhg/internal/obs"
	"lhg/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lhgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lhgen", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "topology: harary, jd, ktree or kdiamond")
		n          = fs.Int("n", 20, "number of nodes")
		k          = fs.Int("k", 3, "connectivity target (tolerates k-1 failures)")
		format     = fs.String("format", "stats", "output format: dot, json, stats, svg or blueprint")
		name       = fs.String("name", "lhg", "graph name for DOT output")
		variant    = fs.Uint64("variant", 0, "non-zero: sample a random constraint witness with this seed (ktree/kdiamond only)")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	c, err := lhg.ParseConstraint(*constraint)
	if err != nil {
		return err
	}
	g, labels, err := lhg.Labeled(c, *n, *k)
	if err != nil {
		return err
	}
	if *variant != 0 {
		g, err = lhg.Build(context.Background(), c, *n, *k, lhg.WithSeed(*variant))
		if err != nil {
			return err
		}
		labels = nil
	}
	switch *format {
	case "dot":
		return g.DOT(out, *name, labels)
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(g)
	case "stats":
		return writeStats(out, c, g, *n, *k)
	case "svg":
		blue, real, err := blueprintFor(c, *n, *k)
		if err != nil {
			// Constraints without tree structure fall back to the
			// circular layout.
			return render.Circular(out, g, labels, render.Style{})
		}
		return render.Blueprint(out, blue, real, render.Style{})
	case "blueprint":
		blue, _, err := blueprintFor(c, *n, *k)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(blue)
	default:
		return fmt.Errorf("unknown format %q (want dot, json, stats, svg or blueprint)", *format)
	}
}

// blueprintFor rebuilds the blueprint behind a tree-structured constraint.
func blueprintFor(c lhg.Constraint, n, k int) (*core.Blueprint, *core.Realization, error) {
	switch c {
	case lhg.JD:
		jd, err := core.BuildJD(n, k)
		if err != nil {
			return nil, nil, err
		}
		return jd.Blue, jd.Real, nil
	case lhg.KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kt.Blue, kt.Real, nil
	case lhg.KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kd.Blue, kd.Real, nil
	default:
		return nil, nil, fmt.Errorf("constraint %v has no blueprint", c)
	}
}

func writeStats(out io.Writer, c lhg.Constraint, g *lhg.Graph, n, k int) error {
	diam := g.Diameter()
	minDeg, _ := g.MinDegree()
	maxDeg, _ := g.MaxDegree()
	_, err := fmt.Fprintf(out,
		"constraint: %s\nnodes: %d\nedges: %d\nk: %d\ndiameter: %d\nmin degree: %d\nmax degree: %d\nregular: %t\navg path length: %.3f\n",
		c, g.Order(), g.Size(), k, diam, minDeg, maxDeg, g.IsRegular(k), g.AvgPathLength())
	return err
}

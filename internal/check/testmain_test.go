package check

import (
	"os"
	"testing"

	"lhg/internal/obs/trace"
)

func TestMain(m *testing.M) {
	// LHG_TEST_TRACE=1 runs the whole suite with the span recorder live —
	// CI uses it to race-test the tracing fast paths under the chaos and
	// churn hammers without slowing the default run.
	if os.Getenv("LHG_TEST_TRACE") == "1" {
		trace.Enable()
	}
	os.Exit(m.Run())
}

package main

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v", err)
	}
	return rows
}

func TestSweepMultiplicative(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "4", "-from", "16", "-to", "64", "-step", "x2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[0][0] != "family" || len(rows[0]) != 8 {
		t.Fatalf("header = %v", rows[0])
	}
	// Sizes 16, 32, 64 × up to 4 families (JD may skip infeasible sizes).
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	// Harary diameter must dominate the LHG diameter at n=64.
	diam := map[string]int{}
	for _, r := range rows[1:] {
		if r[1] == "64" {
			d, err := strconv.Atoi(r[4])
			if err != nil {
				t.Fatal(err)
			}
			diam[r[0]] = d
		}
	}
	if diam["harary"] <= diam["kdiamond"] {
		t.Fatalf("diameters at n=64: %v", diam)
	}
}

func TestSweepAdditiveWithSpectral(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "3", "-from", "10", "-to", "14", "-step", "2",
		"-families", "kdiamond", "-spectral"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows[0]) != 9 || rows[0][8] != "gap" {
		t.Fatalf("header = %v", rows[0])
	}
	for _, r := range rows[1:] {
		// k=3 K-DIAMOND at even n is regular: gap column non-empty.
		n, err := strconv.Atoi(r[1])
		if err != nil {
			t.Fatal(err)
		}
		if n%2 == 0 && r[8] == "" {
			t.Fatalf("missing gap for regular n=%d", n)
		}
		if gap, err := strconv.ParseFloat(r[8], 64); err == nil && gap <= 0 {
			t.Fatalf("non-positive gap %v at n=%d", gap, n)
		}
	}
}

func TestSweepJDSkipsGaps(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "3", "-from", "7", "-to", "11", "-step", "1", "-families", "jd"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// Only n=10 is JD-feasible in [7,11].
	if len(rows) != 2 || rows[1][1] != "10" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSweepErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad range", args: []string{"-from", "50", "-to", "10"}},
		{name: "bad step", args: []string{"-step", "x1"}},
		{name: "bad step text", args: []string{"-step", "huge"}},
		{name: "bad family", args: []string{"-families", "mesh"}},
		{name: "empty families", args: []string{"-families", ","}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

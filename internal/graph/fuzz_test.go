package graph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphOps replays an arbitrary byte string as a sequence of builder
// mutations and asserts the structural invariants of the frozen view after
// every operation: the handshake identity, sorted adjacency, and symmetric
// edges.
func FuzzGraphOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte("add remove add"))
	f.Add([]byte{0xff, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 400 {
			t.Skip("cap the op sequence")
		}
		b := NewBuilder(8)
		for i := 0; i+2 < len(ops); i += 3 {
			op, u, v := ops[i]%3, int(ops[i+1]), int(ops[i+2])
			switch op {
			case 0:
				// AddEdge may fail for invalid input; it must not corrupt.
				_ = b.AddEdge(u%12-2, v%12-2)
			case 1:
				b.RemoveEdge(u%12-2, v%12-2)
			case 2:
				b.AddNode()
			}
			g := b.Freeze()
			if g.Order() != b.Order() || g.Size() != b.Size() {
				t.Fatalf("freeze shape (n=%d,m=%d) disagrees with builder (n=%d,m=%d)",
					g.Order(), g.Size(), b.Order(), b.Size())
			}
			assertInvariants(t, g)
		}
	})
}

func assertInvariants(t *testing.T, g *Graph) {
	t.Helper()
	sum := 0
	for v := 0; v < g.Order(); v++ {
		nbrs := g.Neighbors(v)
		sum += len(nbrs)
		for i := 0; i < len(nbrs); i++ {
			if nbrs[i] == v {
				t.Fatal("self loop stored")
			}
			if i > 0 && nbrs[i-1] >= nbrs[i] {
				t.Fatalf("adjacency of %d not strictly sorted: %v", v, nbrs)
			}
			if !g.HasEdge(nbrs[i], v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, nbrs[i])
			}
		}
	}
	if sum != 2*g.Size() {
		t.Fatalf("handshake violated: degree sum %d, 2m=%d", sum, 2*g.Size())
	}
}

// FuzzJSONDecode throws arbitrary bytes at the graph decoder: it must
// either reject the input or produce a graph satisfying the invariants,
// and any accepted graph must re-encode and re-decode to the same shape.
func FuzzJSONDecode(f *testing.F) {
	f.Add([]byte(`{"nodes":3,"edges":[[0,1]]}`))
	f.Add([]byte(`{"nodes":-1,"edges":[]}`))
	f.Add([]byte(`{"nodes":2,"edges":[[0,0]]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected: fine
		}
		assertInvariants(t, &g)
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.Order() != g.Order() || back.Size() != g.Size() {
			t.Fatalf("round trip changed shape: %s -> %s", g.String(), back.String())
		}
	})
}

// Command lhgd serves the LHG toolkit over HTTP/JSON: build a topology,
// verify its properties, simulate a flood, or drive a live topology through
// joins and leaves with one POST. Identical requests are answered from an
// LRU cache, and identical in-flight requests are coalesced into a single
// verification campaign, so the daemon can front many clients asking the
// same (constraint, n, k) question.
//
// Endpoints:
//
//	POST /v1/build        {"constraint":"kdiamond","n":50,"k":4}
//	POST /v1/verify       {"constraint":"ktree","n":21,"k":3,"properties":["P1","P4"]}
//	POST /v1/flood        {"constraint":"kdiamond","n":50,"k":4,"source":0,
//	                       "failures":{"Nodes":[2,5]}}
//	POST /v1/verify?batch [{...}, ...] — or a sweep {"constraint":"ktree","n":[8,12],"k":[2,3]}
//	GET  /v1/budget?constraint=ktree&n=14&k=3&retries=12
//	POST /v1/reconfigure  {"session":"prod","constraint":"ktree","n":18,"k":3}
//	                      then {"session":"prod","joins":3,"leaves":1}, ...
//	GET  /v1/constraints
//	GET  /healthz
//
// /v1/reconfigure is stateful: each session is a live topology maintained by
// delta surgery (O(k²) edge edits per membership event, never a rebuild) and
// re-verified incrementally after every batch. The response carries the net
// edge delta, the new epoch and the fresh report; a burst of identical
// batches at one epoch coalesces into a single campaign, and a stale epoch
// answers 409 so no batch is ever applied twice.
//
// Usage:
//
//	lhgd -addr 127.0.0.1:8080 -cache 256 -timeout 2m
//	lhgd -addr :8080 -http 127.0.0.1:6060   # debug vars/metrics/pprof
//	lhgd -addr :8081 -data /var/lib/lhgd    # persistent report store
//	lhgd -addr :8080 -shards 127.0.0.1:8081,127.0.0.1:8082   # shard frontend
//
// With -data, verify/flood/budget reports persist content-addressed under
// the directory and replay warm (cached=true) across restarts; multiple
// backends sharing one directory extend the request-coalescing guarantee
// fleet-wide through store leases (one campaign per key across every
// process). With -shards, the instance computes nothing itself: it routes
// each key to its home backend on a consistent-hash ring, probes /healthz,
// and fails requests over — including per-group batch reroutes — when a
// backend dies mid-flight.
//
// The metrics sink is always on: /debug/vars on the -http address exposes
// the serve.* counters (cache hits, coalesced flights, per-endpoint latency
// histograms) that the smoke tests and dashboards read. Tracing is on by
// default too (-notrace turns it off): every response carries X-Trace-Id,
// an incoming W3C traceparent header joins the caller's trace, and
// /debug/trace on the -http address exports the span flight recorder as
// Chrome trace_event JSON. GET /v1/verify?stream and
// GET /v1/reconfigure?stream&session=NAME serve live SSE progress.
// SIGINT/SIGTERM drain in-flight requests, cancel orphaned campaigns and
// exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fmt"

	"lhg/internal/obs"
	"lhg/internal/obs/trace"
	"lhg/internal/serve"
	"lhg/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lhgd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("lhgd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "address to serve the /v1 API on")
		cache     = fs.Int("cache", 256, "LRU result cache capacity in entries (0 disables caching)")
		workers   = fs.Int("workers", 0, "per-campaign goroutine budget (0 = all cores); requests may ask for less, never more")
		timeout   = fs.Duration("timeout", 2*time.Minute, "per-computation deadline; exceeding it returns 504 (0 = no limit)")
		metrics   = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr  = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this extra address")
		sparsify  = fs.Bool("sparsify", true, "probe κ/λ on a sparse certificate when the graph is dense enough (results are identical; off = escape hatch)")
		sessions  = fs.Int("sessions", 0, "max live /v1/reconfigure topology sessions (0 = default 1024, negative disables the endpoint)")
		notrace   = fs.Bool("notrace", false, "disable request tracing (on by default: X-Trace-Id responses, traceparent joins, /debug/trace export)")
		verbose   = fs.Bool("v", false, "debug-level logging (per-request access lines)")
		heartbeat = fs.Duration("heartbeat", 15*time.Second, "SSE keep-alive comment period for ?stream watchers")
		dataDir   = fs.String("data", "", "persistent report store directory; verify/flood/budget results survive restarts, and instances sharing the directory share one fleet-wide campaign per key")
		leaseTTL  = fs.Duration("lease-ttl", 0, "store lease TTL before a crashed campaign leader is taken over (0 = store default)")
		shards    = fs.String("shards", "", "comma-separated backend host:port list; turns this instance into a shard frontend that routes instead of computing")
		replicas  = fs.Int("shard-replicas", 0, "virtual nodes per backend on the consistent-hash ring (0 = default 128)")
		probe     = fs.Duration("probe-interval", time.Second, "backend health-probe period in frontend mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The sink is the daemon's introspection surface (cache hit rates,
	// coalescing counts), not an opt-in extra as in the batch CLIs; same
	// for tracing, which costs one atomic load per call site when idle.
	obs.Enable()
	if !*notrace {
		trace.Enable()
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, logw)
	if err != nil {
		return err
	}
	defer stopObs()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(logw, level)

	opts := serve.Options{
		BaseContext:     ctx,
		CacheSize:       *cache,
		Workers:         *workers,
		Timeout:         *timeout,
		DisableSparsify: !*sparsify,
		MaxSessions:     *sessions,
		Logger:          logger,
		StreamHeartbeat: *heartbeat,
		LeaseTTL:        *leaseTTL,
		ShardReplicas:   *replicas,
		ProbeInterval:   *probe,
	}
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			return err
		}
		opts.Store = st
		logger.Info("lhgd: report store open", "dir", st.Dir(), "reports", st.Len())
	}
	if *shards != "" {
		for _, b := range strings.Split(*shards, ",") {
			if b = strings.TrimSpace(b); b != "" {
				opts.Shards = append(opts.Shards, b)
			}
		}
		if len(opts.Shards) == 0 {
			return fmt.Errorf("-shards given but empty")
		}
	}
	d, err := startDaemon(ctx, opts, *addr)
	if err != nil {
		return err
	}
	role := "backend"
	if len(opts.Shards) > 0 {
		role = "frontend"
	}
	logger.Info("lhgd: listening", "addr", d.Addr(), "tracing", !*notrace, "role", role)

	<-ctx.Done()
	logger.Info("lhgd: shutting down")
	return d.Shutdown()
}

// daemon is one running HTTP server; tests drive it directly to get the
// bound address without scraping logs.
type daemon struct {
	ln     net.Listener
	srv    *http.Server
	served chan error
}

// startDaemon binds addr (use port 0 for an ephemeral port) and serves the
// /v1 API until Shutdown. The serve options' BaseContext should be the
// daemon context so shutdown also cancels orphaned campaigns.
func startDaemon(ctx context.Context, opts serve.Options, addr string) (*daemon, error) {
	if opts.BaseContext == nil {
		opts.BaseContext = ctx
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		ln: ln,
		srv: &http.Server{
			Handler:     serve.New(opts).Handler(),
			BaseContext: func(net.Listener) context.Context { return ctx },
		},
		served: make(chan error, 1),
	}
	go func() { d.served <- d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address (host:port).
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Shutdown drains in-flight requests for up to five seconds, then closes
// the server hard.
func (d *daemon) Shutdown() error {
	grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(grace)
	if serveErr := <-d.served; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

package flood

import (
	"testing"

	"lhg/internal/graph"
	"lhg/internal/harary"
	"lhg/internal/sim"
)

func TestGossipArgumentErrors(t *testing.T) {
	g := cycle(6)
	rng := sim.NewRNG(1)
	if _, err := Gossip(g, -1, 2, Failures{}, rng); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := Gossip(g, 0, 0, Failures{}, rng); err == nil {
		t.Fatal("fanout 0 must error")
	}
	if _, err := Gossip(g, 0, 2, Failures{}, nil); err == nil {
		t.Fatal("nil rng must error")
	}
	if _, err := Gossip(g, 0, 2, Failures{Nodes: []int{0}}, rng); err == nil {
		t.Fatal("crashed source must error")
	}
	if _, err := Gossip(g, 0, 2, Failures{Nodes: []int{99}}, rng); err == nil {
		t.Fatal("bad crashed node must error")
	}
}

func TestGossipFullFanoutEqualsFlood(t *testing.T) {
	// With fanout >= max degree, gossip is deterministic flooding.
	g, err := harary.Build(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, _ := g.MaxDegree()
	rng := sim.NewRNG(3)
	gossip, err := Gossip(g, 0, maxDeg, Failures{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Run(g, 0, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if gossip.Reached != fl.Reached || gossip.Messages != fl.Messages || gossip.Rounds != fl.Rounds {
		t.Fatalf("full-fanout gossip %s != flood %s", gossip, fl)
	}
	for v := range gossip.FirstHeard {
		if gossip.FirstHeard[v] != fl.FirstHeard[v] {
			t.Fatalf("node %d heard at %d vs flood %d", v, gossip.FirstHeard[v], fl.FirstHeard[v])
		}
	}
}

func TestGossipBoundedFanoutLosesCoverage(t *testing.T) {
	// On a 4-regular graph, fanout 2 misses nodes with overwhelming
	// probability at this size.
	g, err := harary.Build(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	incomplete := 0
	for trial := 0; trial < 20; trial++ {
		res, err := Gossip(g, 0, 2, Failures{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			incomplete++
		}
		// Messages are bounded by fanout per informed node.
		if res.Messages > 2*res.Reached {
			t.Fatalf("messages %d exceed fanout*reached %d", res.Messages, 2*res.Reached)
		}
	}
	if incomplete == 0 {
		t.Fatal("fanout-2 gossip never missed a node in 20 trials — implausible")
	}
}

func TestGossipRespectsFailures(t *testing.T) {
	g := cycle(8)
	rng := sim.NewRNG(4)
	res, err := Gossip(g, 0, 2, Failures{Nodes: []int{2, 6}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstHeard[2] != -1 || res.FirstHeard[6] != -1 {
		t.Fatal("crashed nodes must never hear the message")
	}
	// On a cycle, crashing 2 and 6 isolates nodes 3,4,5 from source 0's
	// side... 0's side is 7,1; gossip with fanout 2 on a cycle is flooding.
	if res.Complete {
		t.Fatal("coverage must be partial across the cut")
	}
}

func TestGossipLinkFailures(t *testing.T) {
	g := cycle(4)
	rng := sim.NewRNG(5)
	res, err := Gossip(g, 0, 2, Failures{Links: []graph.Edge{{U: 0, V: 1}, {U: 0, V: 3}}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1 {
		t.Fatalf("isolated source reached %d nodes, want 1", res.Reached)
	}
}

func TestGossipReliabilityBounds(t *testing.T) {
	g, err := harary.Build(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	if _, err := GossipReliability(g, 0, 2, 1, 0, rng); err == nil {
		t.Fatal("zero trials must error")
	}
	rel, err := GossipReliability(g, 0, 4, 0, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel < 0 || rel > 1 {
		t.Fatalf("reliability %v out of [0,1]", rel)
	}
	// Full fanout with no failures on a regular graph = deterministic flood.
	if rel != 1.0 {
		t.Fatalf("full-fanout fault-free gossip reliability = %v, want 1", rel)
	}
}

// Package faultnet injects deterministic, seeded transport faults under a
// net.Conn: message loss, delay (and therefore reordering), duplication,
// and periodic link flaps. It is the adversarial-link layer of the chaos
// harness — the simulators (flood, proc) remove nodes and links cleanly,
// while this package makes the *surviving* links misbehave the way real
// networks do, so the socket layer can prove the paper's f <= k-1 delivery
// guarantee under loss and partitions rather than only under clean crashes.
//
// The wrapper is frame-oriented: every Write call is treated as one atomic
// frame and is either passed through, dropped whole, duplicated whole, or
// delayed whole. Callers must therefore write one protocol frame per Write
// call (netflood does). Reads are never touched — faults on the reverse
// direction belong to the remote endpoint's own wrapper, which is also how
// asymmetric partitions are expressed: a Plan with Drop=1 on one direction
// only.
//
// All randomness comes from a caller-supplied sim.RNG, so a chaos run is
// reproducible from its seed: the k-th frame on a link sees the k-th draw
// of that link's stream.
package faultnet

import (
	"net"
	"sync"
	"time"

	"lhg/internal/obs"
	"lhg/internal/sim"
)

// Fault-injection telemetry: every injected event is observable, so chaos
// tests can assert that the fault path (not a quiet network) was exercised.
var (
	mDropped      = obs.NewCounter("faultnet.frames.dropped")
	mBurstDropped = obs.NewCounter("faultnet.frames.burst_dropped")
	mFlapped      = obs.NewCounter("faultnet.frames.flap_dropped")
	mDelayed      = obs.NewCounter("faultnet.frames.delayed")
	mDuplicated   = obs.NewCounter("faultnet.frames.duplicated")
	mPassed       = obs.NewCounter("faultnet.frames.passed")
)

// Plan describes the fault behavior of one link direction. The zero value
// injects nothing. Probabilities are in [0, 1] and evaluated independently
// per frame, in the fixed order flap, burst, drop, dup, delay — the order
// is part of the determinism contract.
type Plan struct {
	Drop  float64 // P(frame silently dropped)
	Dup   float64 // P(frame written twice back to back)
	Delay float64 // P(frame held for a uniform draw from [DelayMin, DelayMax])

	DelayMin time.Duration
	DelayMax time.Duration

	// FlapPeriod > 0 takes the link down for FlapDown at the start of every
	// period — a flapping link. Frames written while down are lost.
	FlapPeriod time.Duration
	FlapDown   time.Duration

	// BurstPeriod > 0 with BurstLen > 0 raises the drop probability to
	// BurstDrop for the first BurstLen of every period — correlated loss
	// bursts, the signature of a congested or storming link. Unlike a flap
	// (deterministic full outage), a burst window draws per frame, so the
	// background Drop and the burst compose: inside the window the frame
	// faces BurstDrop first, then the ordinary fault ladder.
	BurstPeriod time.Duration
	BurstLen    time.Duration
	BurstDrop   float64
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Dup > 0 || (p.Delay > 0 && p.DelayMax > 0) ||
		(p.FlapPeriod > 0 && p.FlapDown > 0) ||
		(p.BurstPeriod > 0 && p.BurstLen > 0 && p.BurstDrop > 0)
}

// Conn applies a Plan to every Write of the wrapped connection. Reads and
// the rest of the net.Conn surface pass through.
type Conn struct {
	net.Conn
	plan Plan

	decide sync.Mutex // serializes fault decisions: the rng stream and budget
	rng    *sim.RNG
	budget time.Duration // per-frame write allowance from SetWriteDeadline

	writeMu sync.Mutex // keeps frames atomic on the underlying conn

	start time.Time
	done  chan struct{}
	once  sync.Once
}

// Wrap returns c with plan applied to its writes, drawing every decision
// from rng. An inactive plan returns c unchanged.
func Wrap(c net.Conn, plan Plan, rng *sim.RNG) net.Conn {
	if !plan.Active() {
		return c
	}
	return &Conn{
		Conn:  c,
		plan:  plan,
		rng:   rng,
		start: time.Now(),
		done:  make(chan struct{}),
	}
}

// Write treats p as one frame and applies the plan. Dropped frames report
// success — to the sender a lossy link is indistinguishable from a slow
// receiver, exactly the failure the reliable protocol must survive.
func (c *Conn) Write(p []byte) (int, error) {
	c.decide.Lock()
	if c.flappedDown() {
		c.decide.Unlock()
		mFlapped.Inc()
		return len(p), nil
	}
	if c.inBurst() && c.rng.Float64() < c.plan.BurstDrop {
		c.decide.Unlock()
		mBurstDropped.Inc()
		return len(p), nil
	}
	if c.plan.Drop > 0 && c.rng.Float64() < c.plan.Drop {
		c.decide.Unlock()
		mDropped.Inc()
		return len(p), nil
	}
	copies := 1
	if c.plan.Dup > 0 && c.rng.Float64() < c.plan.Dup {
		copies = 2
		mDuplicated.Inc()
	}
	var delay time.Duration
	if c.plan.Delay > 0 && c.plan.DelayMax > 0 && c.rng.Float64() < c.plan.Delay {
		delay = c.rng.Duration(c.plan.DelayMin, c.plan.DelayMax)
	}
	budget := c.budget
	c.decide.Unlock()

	if delay > 0 {
		mDelayed.Inc()
		held := append([]byte(nil), p...)
		go c.writeLate(held, copies, delay, budget)
		return len(p), nil
	}
	if err := c.writeFrames(p, copies, budget); err != nil {
		return 0, err
	}
	return len(p), nil
}

// SetWriteDeadline records a per-frame write allowance instead of arming
// the underlying socket: a delayed frame is written after the caller's
// deadline has passed, so each physical write re-derives its own deadline
// from the allowance that was in force when the frame was submitted.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.decide.Lock()
	if t.IsZero() {
		c.budget = 0
	} else {
		c.budget = time.Until(t)
	}
	c.decide.Unlock()
	return nil
}

// Close stops pending delayed writes and closes the underlying conn.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// flappedDown reports whether the link is inside a down window. Called with
// c.decide held.
func (c *Conn) flappedDown() bool {
	if c.plan.FlapPeriod <= 0 || c.plan.FlapDown <= 0 {
		return false
	}
	return time.Since(c.start)%c.plan.FlapPeriod < c.plan.FlapDown
}

// inBurst reports whether the link is inside a loss-burst window. Called
// with c.decide held.
func (c *Conn) inBurst() bool {
	if c.plan.BurstPeriod <= 0 || c.plan.BurstLen <= 0 || c.plan.BurstDrop <= 0 {
		return false
	}
	return time.Since(c.start)%c.plan.BurstPeriod < c.plan.BurstLen
}

// writeFrames performs the physical writes, one whole frame per Write on
// the underlying conn, re-arming the write deadline per frame.
func (c *Conn) writeFrames(p []byte, copies int, budget time.Duration) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for i := 0; i < copies; i++ {
		if budget > 0 {
			_ = c.Conn.SetWriteDeadline(time.Now().Add(budget))
		}
		if _, err := c.Conn.Write(p); err != nil {
			return err
		}
		mPassed.Inc()
	}
	return nil
}

// writeLate delivers a held frame after its delay, unless the conn closed
// first. Late frames overtake frames written after them — that is the
// reordering fault.
func (c *Conn) writeLate(p []byte, copies int, d, budget time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.done:
		return
	}
	_ = c.writeFrames(p, copies, budget)
}

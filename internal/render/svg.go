// Package render draws topologies as standalone SVG documents. Two
// layouts are provided: a generic circular layout for arbitrary graphs,
// and a blueprint-aware layered layout that draws an LHG the way the
// papers draw their figures — the k tree copies side by side with the
// shared leaves on the bottom level spanning all of them.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"lhg/internal/core"
	"lhg/internal/graph"
)

// Style controls the rendered appearance. The zero value is usable.
type Style struct {
	Width, Height int     // canvas size; default 960x600
	NodeRadius    float64 // default 14
	FontSize      int     // default 11
}

func (s Style) withDefaults() Style {
	if s.Width <= 0 {
		s.Width = 960
	}
	if s.Height <= 0 {
		s.Height = 600
	}
	if s.NodeRadius <= 0 {
		s.NodeRadius = 14
	}
	if s.FontSize <= 0 {
		s.FontSize = 11
	}
	return s
}

type point struct{ x, y float64 }

// Circular renders g on a circle, labels optional (nil uses node ids).
func Circular(w io.Writer, g *graph.Graph, labels map[int]string, style Style) error {
	st := style.withDefaults()
	n := g.Order()
	if n == 0 {
		return fmt.Errorf("render: empty graph")
	}
	cx, cy := float64(st.Width)/2, float64(st.Height)/2
	r := math.Min(cx, cy) - 3*st.NodeRadius
	pos := make([]point, n)
	for v := 0; v < n; v++ {
		angle := 2 * math.Pi * float64(v) / float64(n)
		pos[v] = point{x: cx + r*math.Cos(angle), y: cy + r*math.Sin(angle)}
	}
	return emit(w, g, labels, pos, st)
}

// Blueprint renders a compiled LHG with the layered layout: internal
// copies arranged per tree, shared leaves on a bottom band, unshared
// cliques as tight clusters.
func Blueprint(w io.Writer, blue *core.Blueprint, real *core.Realization, style Style) error {
	if blue == nil || real == nil || real.Graph == nil {
		return fmt.Errorf("render: nil blueprint")
	}
	st := style.withDefaults()
	g := real.Graph
	pos := make([]point, g.Order())

	height := blue.Height()
	margin := 3 * st.NodeRadius
	bandH := (float64(st.Height) - 2*margin - 4*st.NodeRadius) / float64(height+1)
	copyW := (float64(st.Width) - 2*margin) / float64(blue.K)

	// Internal positions: per copy column, per depth row, spread by
	// position order within the depth.
	depthCount := make(map[int]int)
	depthIndex := make(map[int]int)
	for p := 0; p < blue.Positions(); p++ {
		if blue.Kind[p] == core.Internal {
			depthIndex[p] = depthCount[blue.Depth[p]]
			depthCount[blue.Depth[p]]++
		}
	}
	for p := 0; p < blue.Positions(); p++ {
		switch blue.Kind[p] {
		case core.Internal:
			row := float64(blue.Depth[p])
			frac := (float64(depthIndex[p]) + 1) / (float64(depthCount[blue.Depth[p]]) + 1)
			for i := 0; i < blue.K; i++ {
				id := real.CopyNode[i][p]
				pos[id] = point{
					x: margin + copyW*float64(i) + frac*copyW,
					y: margin + row*bandH,
				}
			}
		}
	}
	// Leaves: evenly spread along the bottom band, shared singletons and
	// clique clusters alike.
	leafSlots := 0
	for p := 0; p < blue.Positions(); p++ {
		if blue.Kind[p] != core.Internal {
			leafSlots++
		}
	}
	slot := 0
	bottom := float64(st.Height) - margin
	for p := 0; p < blue.Positions(); p++ {
		switch blue.Kind[p] {
		case core.SharedLeaf:
			slot++
			x := leafX(slot, leafSlots, st, margin)
			pos[real.LeafNode[p]] = point{x: x, y: bottom}
		case core.UnsharedLeaf:
			slot++
			x := leafX(slot, leafSlots, st, margin)
			for i, id := range real.GroupNode[p] {
				angle := 2 * math.Pi * float64(i) / float64(blue.K)
				pos[id] = point{
					x: x + 1.8*st.NodeRadius*math.Cos(angle),
					y: bottom - 2.2*st.NodeRadius + 1.8*st.NodeRadius*math.Sin(angle),
				}
			}
		}
	}
	return emit(w, g, real.Labels, pos, st)
}

func leafX(slot, slots int, st Style, margin float64) float64 {
	return margin + (float64(st.Width)-2*margin)*float64(slot)/(float64(slots)+1)
}

// emit writes the SVG document: edges as lines under nodes as circles with
// centered labels.
func emit(w io.Writer, g *graph.Graph, labels map[int]string, pos []point, st Style) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		st.Width, st.Height, st.Width, st.Height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", st.Width, st.Height)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888" stroke-width="1.2"/>`+"\n",
			pos[e.U].x, pos[e.U].y, pos[e.V].x, pos[e.V].y)
	}
	for v := 0; v < g.Order(); v++ {
		label := ""
		if labels != nil {
			label = labels[v]
		}
		if label == "" {
			label = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#e8f0fe" stroke="#1a56db" stroke-width="1.5"/>`+"\n",
			pos[v].x, pos[v].y, st.NodeRadius)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="middle" dominant-baseline="central">%s</text>`+"\n",
			pos[v].x, pos[v].y, st.FontSize, label)
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

package graph

import (
	"context"
	"errors"
	"testing"
	"time"
)

func denseFixture(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%2 == 0 {
				b.MustAddEdge(u, v)
			}
		}
	}
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Freeze()
}

func TestDistanceStatsCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, _, err := denseFixture(40).DistanceStatsCtx(ctx, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestDistanceStatsCtxCancelMidSweep: cancellation lands between per-source
// BFS sweeps; a big sweep must stop early and report the context error, not
// a bogus diameter.
func TestDistanceStatsCtxCancelMidSweep(t *testing.T) {
	g := denseFixture(1500) // ~1500 BFS sweeps over ~560k edges
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		canceledAt := make(chan time.Time, 1)
		go func() {
			time.Sleep(10 * time.Millisecond)
			canceledAt <- time.Now()
			cancel()
		}()
		_, _, err := g.DistanceStatsCtx(ctx, workers)
		overstay := time.Since(<-canceledAt)
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: sweep finished before the cancel signal; grow the fixture", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if overstay > 100*time.Millisecond {
			t.Fatalf("workers=%d: sweep returned %v after cancellation, want <= 100ms", workers, overstay)
		}
	}

	// The sweep state is pooled; the next computation must be exact.
	diam, _, err := denseFixture(20).DistanceStatsCtx(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantDiam, _ := denseFixture(20).DistanceStats(1)
	if diam != wantDiam {
		t.Fatalf("post-cancellation diameter = %d, want %d", diam, wantDiam)
	}
}

package netflood

import (
	"bufio"
	"net"
	"time"

	"lhg/internal/obs/trace"
)

// This file is the reliable half of the protocol (Options.Reliable): every
// forwarded message is tracked per link until acked; a per-node loop
// retransmits overdue messages with exponential backoff and jitter; a peer
// that exhausts the missed-ack threshold is suspected and its link redialed
// (the hello rides the raw socket, so a lossy fault plan cannot wedge
// recovery); a peer that exhausts its reconnection budget is declared dead
// and its link torn down — graceful degradation back to the crash model,
// which the k-connected topology tolerates for up to k-1 peers.
//
// The storm-control options layer three bounds over the retry machinery,
// all derived statically by the ampguard analyzer: RetryBudget caps the
// total retransmissions a (link, message) may ever spend (reconnections
// reset the missed-ack window but never this budget), RetransmitRate gates
// retransmissions per link behind a token bucket so a lossy burst converts
// into counted deferrals instead of compounding load, and PathDiversity
// lets a node with enough healthy alternative links degrade a suspected
// peer instead of hammering it with redials.

// idleWait is the retransmit loop's sleep when nothing is pending; track
// and attachLocked wake the loop the moment new work appears, so the long
// timer is only a backstop.
const idleWait = time.Minute

// backoffFor returns the delay before retransmission attempt `attempt`
// (1-based): base doubled per attempt, clamped to max. Oversized attempt
// counts would overflow the shift into a negative duration, so the shift is
// capped and any non-positive or out-of-range result takes max.
func backoffFor(base, max time.Duration, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	shift := uint(attempt - 1)
	if shift >= 62 {
		return max
	}
	backoff := base << shift
	if backoff > max || backoff <= 0 {
		backoff = max
	}
	return backoff
}

// track records m as pending on link p until the remote acks it.
func (n *node) track(p *peerConn, m Message) {
	key := id{src: m.Src, seq: m.Seq}
	now := time.Now()
	p.mu.Lock()
	added := false
	if p.pending != nil && !p.dead {
		if _, ok := p.pending[key]; !ok {
			p.pending[key] = &pendingEntry{
				msg:       m,
				firstSent: now,
				nextDue:   now.Add(n.c.opts.RetransmitBase),
			}
			added = true
		}
	}
	p.mu.Unlock()
	if added {
		n.wakeRetransmit()
	}
}

// wakeRetransmit nudges the retransmit loop to recompute its sleep; a
// signal already in flight is enough, so the send never blocks.
func (n *node) wakeRetransmit() {
	if n.retrWake == nil {
		return
	}
	select {
	case n.retrWake <- struct{}{}:
	default:
	}
}

// sendAck acknowledges one received message copy on the link it arrived on.
func (n *node) sendAck(p *peerConn, m Message) {
	mNetAcksSent.Inc()
	ack := Message{Src: m.Src, Seq: m.Seq}
	_ = writeFrame(p, frame{Kind: "ack", Msg: &ack}, n.c.opts.WriteTimeout)
}

// handleAck settles the pending entry the ack names and observes its RTT.
// Acks for already-settled messages (duplicate acks, acks raced by a
// reconnection reset) are ignored.
func (n *node) handleAck(p *peerConn, m Message) {
	key := id{src: m.Src, seq: m.Seq}
	p.mu.Lock()
	e, ok := p.pending[key]
	if ok {
		delete(p.pending, key)
	}
	p.rebuilds = 0 // an ack proves the link healthy: restore its budget
	p.mu.Unlock()
	if ok {
		mNetAcksRecv.Inc()
		hNetAckRTT.Observe(time.Since(e.firstSent).Microseconds())
	}
}

// retransmitLoop drives retransmission and peer health for one node. Each
// pass reports when the next pending entry comes due, and the loop sleeps
// exactly until then — a cluster with nothing pending costs no wakeups at
// all (the old implementation ticked at RetransmitBase/4 forever, so a
// small base with a large max busy-woke thousands of times per second).
// track and attachLocked wake the loop early when new work appears.
func (n *node) retransmitLoop() {
	defer n.wg.Done()
	timer := time.NewTimer(n.c.opts.RetransmitBase)
	defer timer.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-timer.C:
		case <-n.retrWake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		mNetRetrWakeups.Inc()
		next := n.retransmitDue(time.Now())
		d := idleWait
		if !next.IsZero() {
			d = time.Until(next)
			if d < time.Millisecond {
				d = time.Millisecond
			}
		}
		timer.Reset(d)
	}
}

// retransmitDue resends every overdue pending message, applies the
// storm-control budgets, and escalates peers whose messages have exhausted
// the missed-ack threshold. It returns the earliest due time among the
// entries that remain pending (zero if none), so the loop can sleep until
// work exists.
func (n *node) retransmitDue(now time.Time) time.Time {
	opts := &n.c.opts
	var nextWake time.Time
	earlier := func(t time.Time) {
		if nextWake.IsZero() || t.Before(nextWake) {
			nextWake = t
		}
	}
	n.mu.Lock()
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		var resend []Message
		suspect := false
		exhausted := 0
		p.mu.Lock()
		if opts.RetransmitRate > 0 && p.pending != nil {
			// Refill the link's token bucket for the elapsed interval.
			if p.tokensAt.IsZero() {
				p.tokens = float64(opts.RetransmitBurst)
			} else if dt := now.Sub(p.tokensAt); dt > 0 {
				p.tokens += dt.Seconds() * opts.RetransmitRate
				if cap := float64(opts.RetransmitBurst); p.tokens > cap {
					p.tokens = cap
				}
			}
			p.tokensAt = now
		}
		for key, e := range p.pending {
			if e.nextDue.After(now) {
				earlier(e.nextDue)
				continue
			}
			if opts.RetryBudget > 0 && e.total >= opts.RetryBudget {
				// The hard ceiling: this (link, message) has spent its
				// whole statically-priced budget, reconnections included.
				// Abandon it — the flood's other links own delivery now.
				delete(p.pending, key)
				exhausted++
				continue
			}
			if e.attempts >= opts.MaxRetries {
				suspect = true
				continue
			}
			if opts.RetransmitRate > 0 {
				if p.tokens < 1 {
					// Storm gate: no admission token, so the retransmission
					// is deferred until one accrues — bounded, counted load
					// instead of a compounding burst.
					mNetRetrDeferred.Inc()
					e.nextDue = now.Add(tokenWait(p.tokens, opts.RetransmitRate))
					earlier(e.nextDue)
					continue
				}
				p.tokens--
			}
			e.attempts++
			e.total++
			backoff := backoffFor(opts.RetransmitBase, opts.RetransmitMax, e.attempts)
			e.nextDue = now.Add(n.rng.Jitter(backoff, 0.25))
			earlier(e.nextDue)
			resend = append(resend, e.msg)
		}
		p.mu.Unlock()
		for i := range resend {
			mNetRetransmits.Inc()
			_ = writeFrame(p, frame{Kind: "msg", Msg: &resend[i]}, opts.WriteTimeout)
		}
		if exhausted > 0 {
			mNetRetrBudgetX.Add(int64(exhausted))
			if trace.Enabled() {
				trace.Instant("netflood.retransmit.budget_exhausted",
					trace.Int("node", int64(n.idx)),
					trace.Int("peer", int64(p.remote)),
					trace.Int("abandoned", int64(exhausted)))
			}
		}
		if len(resend) > 0 && trace.Enabled() {
			trace.Instant("netflood.retransmit",
				trace.Int("node", int64(n.idx)),
				trace.Int("peer", int64(p.remote)),
				trace.Int("resent", int64(len(resend))))
		}
		if suspect {
			n.repairPeer(p, now)
		}
	}
	return nextWake
}

// tokenWait is the time until a bucket at `tokens` refilling at `rate`
// tokens/second holds one whole token.
func tokenWait(tokens, rate float64) time.Duration {
	d := time.Duration((1 - tokens) / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// repairPeer handles a peer that stopped acking. With PathDiversity set and
// enough healthy alternative links, the node degrades instead of redialing:
// the suspect entries re-enter the (rate-gated, budget-capped) retransmit
// schedule at maximum backoff and the redial is deferred — a lossy link is
// throttled, not hammered. Otherwise the peer is redialed; a successful
// redial swaps the socket under the existing peerConn, so pending messages
// retransmit immediately on the fresh link. A failed dial — or an exhausted
// reconnection budget — declares the peer dead: the link is torn down, its
// pending traffic abandoned, and the flood continues on the surviving
// links.
func (n *node) repairPeer(p *peerConn, now time.Time) {
	if div := n.c.opts.PathDiversity; div > 0 && n.healthyPeers(p.remote) >= div-1 {
		mNetRepairDeferred.Inc()
		if trace.Enabled() {
			trace.Instant("netflood.repair.deferred",
				trace.Int("node", int64(n.idx)),
				trace.Int("peer", int64(p.remote)))
		}
		p.mu.Lock()
		for _, e := range p.pending {
			if e.attempts >= n.c.opts.MaxRetries {
				e.attempts = 0
				e.nextDue = now.Add(n.c.opts.RetransmitMax)
			}
		}
		p.mu.Unlock()
		n.wakeRetransmit()
		return
	}

	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.rebuilds++
	exhausted := p.rebuilds > n.c.opts.MaxReconnects
	p.mu.Unlock()

	if !exhausted {
		if addr, ok := n.c.nodeAddr(p.remote); ok {
			if conn, err := net.DialTimeout("tcp", addr, n.c.opts.HandshakeTimeout); err == nil {
				hello := frame{Kind: "hello", From: n.idx}
				if err := writeFrameTo(conn, hello, n.c.opts.WriteTimeout); err == nil {
					if n.attach(p.remote, conn, bufio.NewReader(conn)) != nil {
						mNetReconnects.Inc()
						return
					}
				}
				conn.Close()
			}
		}
	}
	if n.unregister(p.remote) {
		mNetPeersDead.Inc()
	}
}

// healthyPeers counts the live links this node holds besides the one to
// `excluding` — the remaining path diversity the escalation gate consults.
func (n *node) healthyPeers(excluding int) int {
	n.mu.Lock()
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		if p.remote != excluding {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()
	healthy := 0
	for _, p := range peers {
		p.mu.Lock()
		if !p.dead && p.conn != nil {
			healthy++
		}
		p.mu.Unlock()
	}
	return healthy
}

package graph

import "sort"

// Sparse connectivity certificates (Nagamochi–Ibaraki 1992).
//
// A single scan-first-search pass partitions the edge set into maximal
// spanning forests F_1, F_2, …: F_i is a spanning forest of
// G − (F_1 ∪ … ∪ F_{i−1}). The union of the first k forests is the sparse
// k-certificate of G. It has at most k·(n−1) edges and preserves
// connectivity up to k in both the node and the link sense:
//
//	κ(G) >= i  ⟹  κ(F_1 ∪ … ∪ F_i) >= i   for every i <= k, and
//	λ(G) >= i  ⟹  λ(F_1 ∪ … ∪ F_i) >= i   for every i <= k,
//
// while the certificate, being a spanning subgraph, can never exceed the
// connectivity of G. Two consequences the verification pipeline in
// internal/check builds on:
//
//   - Verdicts: κ(G) >= k iff κ(cert_k) >= k (and the same for λ), so the
//     boolean P1/P2 checks may probe the certificate instead of G.
//   - Exact values: whenever κ(G) < k the two bounds pin κ(cert_k) = κ(G)
//     exactly (same for λ). Since κ <= λ <= δ(G) always (Whitney), the
//     certificate for k = δ(G)+1 reproduces both exact connectivity values
//     of G unconditionally.
//
// The scan itself is linear in the graph size; the only superlinear costs
// are the binary-searched partner-arc lookups and the freeze sort of the
// resulting subgraph, O(m log n) in total — negligible next to one
// max-flow probe of the verification it accelerates.

// SparseCertificate returns the Nagamochi–Ibaraki sparse k-certificate of
// g: the union F_1 ∪ … ∪ F_k of the maximal spanning forest decomposition,
// computed by one maximum-adjacency (scan-first-search) pass without any
// flow computation. The result is a frozen spanning subgraph of g with at
// most k·(n−1) edges, the same components as g, and connectivity related
// to g as documented above. k < 1 yields the edgeless graph; when every
// edge is kept (k >= the largest forest index) g itself is returned —
// frozen graphs are immutable, so sharing is safe.
func SparseCertificate(g *Graph, k int) *Graph {
	n := g.Order()
	if n == 0 {
		return New(0)
	}
	if k < 1 {
		return New(n)
	}
	if maxDeg, _ := g.MaxDegree(); k >= maxDeg {
		// Every edge (x,y) enters forest r(y)+1 <= deg(y) <= Δ <= k: the
		// certificate is g itself.
		return g
	}
	forest := forestIndices(g)
	m := g.Size()
	kept := make([]Edge, 0, m)
	id := 0
	g.EachEdge(func(u, v int) {
		if int(forest[id]) <= k {
			kept = append(kept, Edge{U: u, V: v})
		}
		id++
	})
	if len(kept) == m {
		return g
	}
	return MustFromEdges(n, kept)
}

// forestIndices runs the scan-first-search pass and returns the forest
// index (1-based) of every edge, indexed in EachEdge order. The scan
// repeatedly picks an unscanned node x maximizing r(x) — the number of
// already-labeled edges at x — and labels each edge to an unscanned
// neighbor y with forest index r(y)+1. Ties are broken deterministically,
// so the decomposition is reproducible run to run.
func forestIndices(g *Graph) []int32 {
	n := g.Order()
	m := g.Size()
	forest := make([]int32, m)

	// Per-arc edge ids: the two arcs of each undirected edge share the id
	// assigned in EachEdge order. The partner arc of (u,v) with u < v is
	// located by binary search in v's sorted row.
	eidOf := make([]int32, len(g.nbr))
	id := int32(0)
	for u := 0; u < n; u++ {
		row := g.row(u)
		for i, w := range row {
			v := int(w)
			if u >= v {
				continue
			}
			eidOf[int(g.off[u])+i] = id
			rv := g.row(v)
			j := sort.Search(len(rv), func(j int) bool { return int(rv[j]) >= u })
			eidOf[int(g.off[v])+j] = id
			id++
		}
	}

	// Bucket queue over r values with lazy deletion: a node is re-pushed
	// whenever its r grows, and stale entries are skipped on pop.
	r := make([]int32, n)
	scanned := make([]bool, n)
	buckets := make([][]int32, 1, 8)
	buckets[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		buckets[0][v] = int32(n - 1 - v) // pop order: 0, 1, 2, …
	}
	maxr := 0
	for remaining := n; remaining > 0; {
		for maxr > 0 && len(buckets[maxr]) == 0 {
			maxr--
		}
		b := buckets[maxr]
		x := int(b[len(b)-1])
		buckets[maxr] = b[:len(b)-1]
		if scanned[x] || int(r[x]) != maxr {
			continue // stale entry
		}
		scanned[x] = true
		remaining--
		row := g.row(x)
		for i, w := range row {
			y := int(w)
			if scanned[y] {
				continue
			}
			forest[eidOf[int(g.off[x])+i]] = r[y] + 1
			r[y]++
			if int(r[y]) >= len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[r[y]] = append(buckets[r[y]], int32(y))
			if int(r[y]) > maxr {
				maxr = int(r[y])
			}
		}
	}
	return forest
}

package ampguard

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"lhg/internal/core"
	"lhg/internal/graph"
)

// linePolicy is a hand-checkable policy: 2 retries, 1s timeout, no jitter,
// backoffs 100ms then 200ms (cap 300ms never reached).
func linePolicy() Policy {
	return Policy{
		Timeout: time.Second,
		Base:    100 * time.Millisecond,
		Max:     300 * time.Millisecond,
		Retries: 2,
		Jitter:  0,
	}
}

func TestPolicyEdgeArithmetic(t *testing.T) {
	p := linePolicy()
	if got := p.EdgeAttempts(); got != 3 {
		t.Fatalf("EdgeAttempts = %d, want 3", got)
	}
	// Backoff series: 100ms + 200ms = 300ms.
	if got := p.RetryWindow(); got != 300*time.Millisecond {
		t.Fatalf("RetryWindow = %v, want 300ms", got)
	}
	// 3 attempts × 1s timeout + 300ms of backoff.
	if got := p.EdgeWorstLatency(); got != 3300*time.Millisecond {
		t.Fatalf("EdgeWorstLatency = %v, want 3.3s", got)
	}
	// Jitter widens the worst case: ±25% jitter prices at 1.25×.
	p.Jitter = 0.25
	if got := p.RetryWindow(); got != 375*time.Millisecond {
		t.Fatalf("jittered RetryWindow = %v, want 375ms", got)
	}
	// The backoff cap binds once doubling passes Max.
	p.Jitter = 0
	p.Retries = 4 // 100, 200, 300(cap), 300(cap)
	if got := p.RetryWindow(); got != 900*time.Millisecond {
		t.Fatalf("capped RetryWindow = %v, want 900ms", got)
	}
	// A huge attempt index must not overflow the shift.
	if got := p.backoff(200); got != p.Max {
		t.Fatalf("backoff(200) = %v, want cap %v", got, p.Max)
	}
}

// TestAnalyzeLinearChain prices the 0–1–2 path graph: one path of two hops,
// amplification (1+2)^2 = 9, worst latency 2 × 3.3s.
func TestAnalyzeLinearChain(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	r, err := Analyze(context.Background(), g, 0, 1, linePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(r.Pairs))
	}
	far := r.Pairs[1] // target 2
	if far.Target != 2 || far.Diversity != 1 || len(far.Paths) != 1 {
		t.Fatalf("pair to 2 malformed: %+v", far)
	}
	if got := far.Paths[0].Hops; got != 2 {
		t.Fatalf("hops = %d, want 2", got)
	}
	if got := far.Amplification; got != 9 {
		t.Fatalf("amplification = %g, want 9", got)
	}
	if got := far.WorstLatency; got != 6600*time.Millisecond {
		t.Fatalf("worst latency = %v, want 6.6s", got)
	}
	// 2 edges → 4 directed frames, 3 attempts each.
	if r.FrameCeiling != 12 {
		t.Fatalf("frame ceiling = %d, want 12", r.FrameCeiling)
	}
	if r.MinDiversity != 1 || r.MaxHops != 2 {
		t.Fatalf("diversity/hops = %d/%d, want 1/2", r.MinDiversity, r.MaxHops)
	}
}

// TestAnalyzeDiamond prices the 4-cycle 0–1–3, 0–2–3: two disjoint paths to
// the opposite corner, and the pair is priced at the family maximum.
func TestAnalyzeDiamond(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 3}, {U: 0, V: 2}, {U: 2, V: 3},
	})
	r, err := Analyze(context.Background(), g, 0, 2, linePolicy())
	if err != nil {
		t.Fatal(err)
	}
	var opposite *PairBudget
	for i := range r.Pairs {
		if r.Pairs[i].Target == 3 {
			opposite = &r.Pairs[i]
		}
	}
	if opposite == nil || opposite.Diversity != 2 {
		t.Fatalf("want 2 disjoint paths to the opposite corner, got %+v", opposite)
	}
	for _, pb := range opposite.Paths {
		if pb.Hops != 2 || pb.Path[0] != 0 || pb.Path[len(pb.Path)-1] != 3 {
			t.Fatalf("malformed family path %+v", pb)
		}
	}
	if opposite.Amplification != 9 || opposite.WorstLatency != 6600*time.Millisecond {
		t.Fatalf("family max mispriced: %+v", opposite)
	}
}

// TestAnalyzeKDiamondDiversityMatchesK checks the paper's guarantee end to
// end: on a k-connected LHG every pair's measured family has at least k
// members, so MinDiversity ≥ k.
func TestAnalyzeKDiamondDiversityMatchesK(t *testing.T) {
	kd, err := core.BuildKDiamond(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(context.Background(), kd.Real.Graph, 0, 4, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinDiversity < 4 {
		t.Fatalf("MinDiversity = %d on a 4-connected topology", r.MinDiversity)
	}
	if r.MaxHops <= 0 || r.MaxAmplification < math.Pow(13, float64(r.MaxHops)) {
		t.Fatalf("amplification %g inconsistent with max hops %d", r.MaxAmplification, r.MaxHops)
	}
	g := r.Guard()
	if g.RetryBudget != 12 || g.PathDiversity != r.MinDiversity || g.RetransmitBurst != 12 {
		t.Fatalf("guard plan malformed: %+v", g)
	}
	if g.HopBudget > r.N-1 || g.HopBudget < r.MaxHops {
		t.Fatalf("hop budget %d outside [%d, %d]", g.HopBudget, r.MaxHops, r.N-1)
	}
	if g.RetransmitRate <= 0 {
		t.Fatalf("token rate %g must be positive", g.RetransmitRate)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if _, err := Analyze(context.Background(), g, 5, 1, linePolicy()); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Analyze(context.Background(), g, 0, 1, Policy{}); err == nil {
		t.Fatal("zero policy accepted")
	}
	bad := linePolicy()
	bad.Retries = -1
	if _, err := Analyze(context.Background(), g, 0, 1, bad); err == nil {
		t.Fatal("negative retries accepted")
	}
	// Disconnected targets are an analysis error, not a silent omission.
	disc := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Analyze(context.Background(), disc, 0, 1, linePolicy()); err == nil {
		t.Fatal("unreachable target accepted")
	}
	// A canceled context aborts between pairs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, g, 0, 1, linePolicy()); err == nil {
		t.Fatal("canceled analysis completed")
	}
}

func TestReportWriteJSON(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	r, err := Analyze(context.Background(), g, 0, 2, linePolicy())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.FrameCeiling != r.FrameCeiling || len(back.Pairs) != len(r.Pairs) {
		t.Fatalf("round-trip lost data: %+v vs %+v", back, *r)
	}
}

package check

import (
	"testing"
	"testing/quick"

	"lhg/internal/core"
	"lhg/internal/graph"
	"lhg/internal/harary"
)

func TestCertifyPetersen(t *testing.T) {
	cert, err := Certify(petersen())
	if err != nil {
		t.Fatal(err)
	}
	if cert.K != 3 {
		t.Fatalf("certified κ=%d, want 3", cert.K)
	}
	if len(cert.Cut) != 3 {
		t.Fatalf("cut %v, want 3 nodes", cert.Cut)
	}
	if err := cert.Validate(petersen()); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestCertifyCompleteGraph(t *testing.T) {
	g := complete(6)
	cert, err := Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	if cert.K != 5 {
		t.Fatalf("κ(K6)=%d, want 5", cert.K)
	}
	if len(cert.Cut) != 0 {
		t.Fatalf("complete graph has no cut, got %v", cert.Cut)
	}
	if err := cert.Validate(g); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestCertifyDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	cert, err := Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	if cert.K != 0 {
		t.Fatalf("κ=%d, want 0", cert.K)
	}
	if err := cert.Validate(g); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestCertifyTiny(t *testing.T) {
	if _, err := Certify(graph.New(1)); err == nil {
		t.Fatal("singleton must error")
	}
}

func TestCertifyLHGConstructions(t *testing.T) {
	kt, err := core.BuildKTree(18, 3)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if cert.K != 3 {
		t.Fatalf("K-TREE(18,3) certified κ=%d", cert.K)
	}
	if err := cert.Validate(kt.Real.Graph); err != nil {
		t.Fatal(err)
	}
	h, err := harary.Build(14, 4)
	if err != nil {
		t.Fatal(err)
	}
	cert, err = Certify(h)
	if err != nil {
		t.Fatal(err)
	}
	if cert.K != 4 {
		t.Fatalf("H(4,14) certified κ=%d", cert.K)
	}
	if err := cert.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	g := petersen()
	cert, err := Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	// Claiming a higher connectivity must fail.
	cert.K = 4
	if err := cert.Validate(g); err == nil {
		t.Fatal("inflated K must fail validation")
	}
	// Restore and break a path.
	cert, err = Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	cert.PathFamilies[0][0] = []int{0, 9, 5} // likely invalid edges
	if err := cert.Validate(g); err == nil {
		t.Fatal("corrupted path must fail validation")
	}
	// Break the cut.
	cert, err = Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	cert.Cut = []int{0, 1, 2}
	if err := cert.Validate(g); err == nil {
		t.Fatal("non-disconnecting cut must fail validation")
	}
	// Drop the cut entirely.
	cert, err = Certify(g)
	if err != nil {
		t.Fatal(err)
	}
	cert.Cut = nil
	if err := cert.Validate(g); err == nil {
		t.Fatal("missing cut must fail validation on a non-complete graph")
	}
}

// TestCertifySparseValidatesAgainstOriginal is the regression test for
// the sparsified certificate path: certificates whose κ and path families
// come from the Nagamochi–Ibaraki view must still validate against the
// ORIGINAL graph (paths of a spanning subgraph are paths of g; the cut is
// computed on g), and must certify the same κ as the full path. Covers a
// dense random graph, the LHG constructions, the disconnected case and
// the complete-graph empty-cut edge case.
func TestCertifySparseValidatesAgainstOriginal(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", petersen()},
		{"complete", complete(6)}, // empty-cut edge case
		{"disconnected", graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})},
		{"dense-random", randomGraph(14, 99)},
		{"harary", mustHarary(t, 14, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, err := Certify(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := CertifySparse(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if sparse.K != full.K {
				t.Fatalf("sparse certified κ=%d, full %d", sparse.K, full.K)
			}
			if err := sparse.Validate(tc.g); err != nil {
				t.Fatalf("sparse certificate fails against the original graph: %v", err)
			}
			if tc.name == "complete" && len(sparse.Cut) != 0 {
				t.Fatalf("complete graph must certify with an empty cut, got %v", sparse.Cut)
			}
		})
	}
}

// TestCertifySparsePropertyRoundTrips is the randomized version: every
// sparse certificate validates against the graph it was derived from.
func TestCertifySparsePropertyRoundTrips(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 3
		g := randomGraph(n, uint64(seed))
		cert, err := CertifySparse(g)
		if err != nil {
			return false
		}
		return cert.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func mustHarary(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	h, err := harary.Build(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPropertyCertifyRoundTrips(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 3
		g := randomGraph(n, uint64(seed))
		cert, err := Certify(g)
		if err != nil {
			return false
		}
		return cert.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(n int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%2 == 0 {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

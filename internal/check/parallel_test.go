package check

import (
	"testing"

	"lhg/internal/graph"
)

// reportsEqual compares every exported field of two reports.
func reportsEqual(a, b *Report) bool {
	return a.N == b.N && a.M == b.M && a.K == b.K &&
		a.NodeConnectivity == b.NodeConnectivity &&
		a.EdgeConnectivity == b.EdgeConnectivity &&
		a.KNodeConnected == b.KNodeConnected &&
		a.KLinkConnected == b.KLinkConnected &&
		a.LinkMinimal == b.LinkMinimal &&
		a.ViolatingEdge == b.ViolatingEdge &&
		a.Diameter == b.Diameter &&
		a.DiameterBound == b.DiameterBound &&
		a.LogDiameter == b.LogDiameter &&
		a.Regular == b.Regular &&
		a.MinDegree == b.MinDegree &&
		a.MaxDegree == b.MaxDegree &&
		a.AvgPathLen == b.AvgPathLen
}

// TestVerifyParallelMatchesSerial runs the parallel verifier with 8 workers
// over fixtures covering every branch — regular LHG witnesses, irregular
// P3-violating graphs, underconnected and disconnected graphs — and
// requires bit-identical reports, including the P3 witness edge.
func TestVerifyParallelMatchesSerial(t *testing.T) {
	fixtures := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{name: "petersen", g: petersen(), k: 3},
		{name: "K6", g: complete(6), k: 5},
		{name: "chorded cycle", g: chorded(), k: 2},
		{name: "underconnected", g: cycle(6), k: 3},
		{name: "disconnected", g: graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}}), k: 1},
		{name: "random irregular", g: randomGraph(16, 7), k: 1},
	}
	for _, tt := range fixtures {
		t.Run(tt.name, func(t *testing.T) {
			serial, err := Verify(tt.g, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			par, err := VerifyParallel(tt.g, tt.k, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reportsEqual(serial, par) {
				t.Fatalf("parallel report differs:\nserial:   %s\nparallel: %s", serial, par)
			}
			_, sOK := serial.Violation()
			_, pOK := par.Violation()
			if sOK != pOK {
				t.Fatalf("violation flags differ: serial=%t parallel=%t", sOK, pOK)
			}
		})
	}
}

func TestVerifyParallelRandomSweep(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		g := randomGraph(12, seed)
		serial, err := Verify(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := VerifyParallel(g, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reportsEqual(serial, par) {
			t.Fatalf("seed %d: parallel report differs:\nserial:   %s\nparallel: %s",
				seed, serial, par)
		}
	}
}

func TestVerifyParallelArgumentErrors(t *testing.T) {
	g := cycle(5)
	if _, err := VerifyParallel(g, 0, 8); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := VerifyParallel(g, 5, 8); err == nil {
		t.Fatal("k=n must be rejected")
	}
}

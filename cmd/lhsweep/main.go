// Command lhsweep produces machine-readable CSV for the headline metrics
// across a size sweep, ready for plotting: edges, diameter, flooding
// rounds, message cost, the Moore diameter lower bound, and (optionally)
// the spectral gap of k-regular instances.
//
// Usage:
//
//	lhsweep -k 4 -from 16 -to 512 -step x2 > sweep.csv
//	lhsweep -k 3 -from 10 -to 100 -step 10 -spectral
//	lhsweep -k 4 -from 16 -to 4096 -step x2 -progress -metrics > sweep.csv
//
// Columns: family,n,k,edges,diameter,rounds,messages,moore[,kappa,lambda][,gap]
// (-verify adds the exact connectivity columns; -sparsify selects the
// certificate fast path for them, with identical values either way)
//
// Only the CSV goes to stdout; progress lines, the -metrics JSON dump and
// the -http endpoint announcement all go to stderr, so redirecting stdout
// always yields a clean, parseable file.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"lhg"
	"lhg/internal/check"
	"lhg/internal/obs"
	"lhg/internal/spectral"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lhsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lhsweep", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 4, "connectivity target")
		from      = fs.Int("from", 16, "smallest n")
		to        = fs.Int("to", 256, "largest n")
		step      = fs.String("step", "x2", "sweep step: a number (additive) or xN (multiplicative)")
		doGap     = fs.Bool("spectral", false, "include the spectral gap column (k-regular sizes only, slower)")
		verify    = fs.Bool("verify", false, "include exact kappa and lambda columns (max-flow verification per size, slower)")
		sparsify  = fs.Bool("sparsify", true, "with -verify: probe κ/λ on a sparse certificate when the graph is dense enough (results are identical)")
		prescreen = fs.Bool("prescreen", true, "with -verify: seed the κ/λ sweeps with Monte Carlo contraction cuts on large graphs (results are identical)")
		families  = fs.String("families", "harary,jd,ktree,kdiamond", "comma-separated constraint list")
		workers   = fs.Int("workers", 0, "goroutines for the diameter sweep (0 = all cores)")
		progress  = fs.Bool("progress", false, "report sweep progress on stderr")
		metrics   = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr  = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
		tracePath = fs.String("trace", "", "enable tracing and write the span flight recorder to this file (Chrome trace_event JSON) at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	stopTrace := obs.StartTrace(*tracePath, os.Stderr)
	defer stopTrace()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *from < 2 || *to < *from {
		return fmt.Errorf("invalid range [%d,%d]", *from, *to)
	}
	next, err := stepper(*step)
	if err != nil {
		return err
	}
	constraints, err := parseFamilies(*families)
	if err != nil {
		return err
	}

	w := csv.NewWriter(out)
	header := []string{"family", "n", "k", "edges", "diameter", "rounds", "messages", "moore"}
	if *verify {
		header = append(header, "kappa", "lambda")
	}
	if *doGap {
		header = append(header, "gap")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	var prog *obs.Progress
	if *progress {
		total := int64(0)
		for n := *from; n <= *to; n = next(n) {
			for _, c := range constraints {
				if lhg.Exists(c, n, *k) {
					total++
				}
			}
		}
		prog = obs.NewProgress(os.Stderr, "sweep", total)
	}
	for n := *from; n <= *to; n = next(n) {
		for _, c := range constraints {
			if !lhg.Exists(c, n, *k) {
				continue
			}
			g, err := lhg.Build(ctx, c, n, *k)
			if err != nil {
				return err
			}
			res, err := lhg.Flood(ctx, g, 0)
			if err != nil {
				return err
			}
			row := []string{
				c.String(),
				strconv.Itoa(n),
				strconv.Itoa(*k),
				strconv.Itoa(g.Size()),
				strconv.Itoa(g.DiameterParallel(*workers)),
				strconv.Itoa(res.Rounds),
				strconv.Itoa(res.Messages),
				strconv.Itoa(check.MooreDiameterLowerBound(n, *k)),
			}
			if *verify {
				r, err := lhg.Verify(ctx, g, *k,
					lhg.WithWorkers(*workers),
					lhg.WithProperties(lhg.PropNodeConnectivity|lhg.PropLinkConnectivity),
					lhg.WithSparsify(*sparsify),
					lhg.WithPrescreen(*prescreen))
				if err != nil {
					return err
				}
				row = append(row,
					strconv.Itoa(r.NodeConnectivity),
					strconv.Itoa(r.EdgeConnectivity))
			}
			if *doGap {
				cell := ""
				if g.IsRegular(*k) {
					gap, err := spectral.SpectralGap(g, spectral.Options{})
					if err != nil {
						return err
					}
					cell = strconv.FormatFloat(gap, 'f', 6, 64)
				}
				row = append(row, cell)
			}
			if err := w.Write(row); err != nil {
				return err
			}
			prog.Add(1)
		}
	}
	prog.Finish()
	w.Flush()
	return w.Error()
}

// stepper parses the -step flag into an increment function.
func stepper(s string) (func(int) int, error) {
	if len(s) > 1 && s[0] == 'x' {
		f, err := strconv.Atoi(s[1:])
		if err != nil || f < 2 {
			return nil, fmt.Errorf("bad multiplicative step %q", s)
		}
		return func(n int) int { return n * f }, nil
	}
	d, err := strconv.Atoi(s)
	if err != nil || d < 1 {
		return nil, fmt.Errorf("bad additive step %q", s)
	}
	return func(n int) int { return n + d }, nil
}

func parseFamilies(s string) ([]lhg.Constraint, error) {
	var out []lhg.Constraint
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			name := s[start:i]
			start = i + 1
			if name == "" {
				continue
			}
			c, err := lhg.ParseConstraint(name)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no families selected")
	}
	return out, nil
}

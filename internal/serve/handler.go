package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// One generic request pipeline — decode, validate, compute, envelope —
// shared by every /v1 route. Before this helper each handler hand-rolled
// the same dozen lines (and drifted: different error shapes, inconsistent
// Allow headers); now a route is its compute function plus a registration
// line, and the envelope/metrics/tracing behavior is uniform by
// construction.

// maxRequestBody bounds any /v1 request body. Batch sweeps are the largest
// legitimate payload and fit comfortably.
const maxRequestBody = 8 << 20

// validatable is implemented by request types that self-validate after
// decoding; the helper rejects a failing check as 400 bad_request.
type validatable interface{ check() error }

// decodeJSON strictly decodes r's JSON body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// runJSON is the POST pipeline: decode the body into a fresh Req, run its
// check, hand it to fn, and write the 200 result or the error envelope.
// fn returns either the response value or an error already carrying (or
// classifiable to) its status and code.
func runJSON[Req any](s *Server, ep endpoint, w http.ResponseWriter, r *http.Request,
	fn func(ctx context.Context, req *Req) (any, error)) {
	start := time.Now()
	done := s.track(ep)
	var req Req
	if err := decodeJSON(r, &req); err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	runChecked(s, w, r, &req, fn, done, start)
}

// runQuery is the GET pipeline: parse maps the query string onto a Req
// (the same shape a POST body would carry), then the flow matches runJSON.
func runQuery[Req any](s *Server, ep endpoint, w http.ResponseWriter, r *http.Request,
	parse func(r *http.Request) (*Req, error),
	fn func(ctx context.Context, req *Req) (any, error)) {
	start := time.Now()
	done := s.track(ep)
	req, err := parse(r)
	if err != nil {
		done(true, start)
		writeError(w, r, badRequest(err))
		return
	}
	runChecked(s, w, r, req, fn, done, start)
}

func runChecked[Req any](s *Server, w http.ResponseWriter, r *http.Request, req *Req,
	fn func(ctx context.Context, req *Req) (any, error),
	done func(failed bool, start time.Time), start time.Time) {
	if v, ok := any(req).(validatable); ok {
		if err := v.check(); err != nil {
			done(true, start)
			writeError(w, r, badRequest(err))
			return
		}
	}
	resp, err := fn(r.Context(), req)
	if err != nil {
		done(true, start)
		writeError(w, r, err)
		return
	}
	done(false, start)
	writeJSON(w, http.StatusOK, resp)
}

package flow

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// The work-stealing scheduler's contract: every index in [0, total) is
// executed exactly once regardless of worker count, skew or steal races;
// a worker stranded behind expensive probes loses its tail to thieves
// instead of stalling the sweep; and because each index gets exactly one
// probe no matter who runs it, probe-counter totals are identical for
// serial and parallel sweeps.

func withFlowSink(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
}

// TestStealExecutesAllExactlyOnce hammers the scheduler with many more
// tasks than workers and asserts the fundamental invariant under the race
// detector: exactly-once execution, no lost and no duplicated indices.
func TestStealExecutesAllExactlyOnce(t *testing.T) {
	const total, workers = 20000, 8
	var hits [total]atomic.Int32
	runStealing(context.Background(), "flow.test.worker", total, workers,
		func(w int, next func() (int, bool)) {
			for {
				i, ok := next()
				if !ok {
					return
				}
				hits[i].Add(1)
			}
		})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times, want exactly 1", i, got)
		}
	}
}

// TestStealSkewedCostsNoStarvation gives worker 0 a contiguous prefix of
// pathologically slow tasks (the static split would strand it for ~100x
// the sweep time) and asserts that thieves lift its tail: the sweep
// completes with real steal traffic, every worker goes through the busy
// timer, and no index is lost.
func TestStealSkewedCostsNoStarvation(t *testing.T) {
	withFlowSink(t)
	const total, workers = 400, 4
	busy0 := tWorkerBusy.Count()
	var ran [total]atomic.Int32
	var byOthers atomic.Int32
	runStealing(context.Background(), "flow.test.worker", total, workers,
		func(w int, next func() (int, bool)) {
			for {
				i, ok := next()
				if !ok {
					return
				}
				ran[i].Add(1)
				if i < total/workers {
					// Worker 0's initial range: expensive probes.
					time.Sleep(200 * time.Microsecond)
					if w != 0 {
						byOthers.Add(1)
					}
				}
			}
		})
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times, want exactly 1", i, got)
		}
	}
	if hits := mStealHits.Value(); hits == 0 {
		t.Fatal("skewed sweep recorded zero steals: the stranded tail was not rebalanced")
	}
	if byOthers.Load() == 0 {
		t.Fatal("no slow probe from worker 0's range ran on another worker")
	}
	if got := tWorkerBusy.Count() - busy0; got != workers {
		t.Fatalf("worker busy timer observed %d workers, want %d (an unobserved worker is an unaccounted stall)", got, workers)
	}
}

// skewedFixture is a K4 sharing one vertex with a long cycle: degrees are
// wildly uneven, the graph is irregular, and λ = κ = 2 — so the minimality
// sweep must issue real probes for the K4-internal edges (endpoint degrees
// exceed both bars) while the cycle edges take the degree shortcut.
func skewedFixture() *graph.Graph {
	b := graph.NewBuilder(24)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.MustAddEdge(u, v)
		}
	}
	for v := 3; v < 23; v++ {
		b.MustAddEdge(v, v+1)
	}
	b.MustAddEdge(23, 0)
	return b.Freeze()
}

// TestStealProbeTotalsSerialParallel pins the probe-count determinism the
// scheduler preserves: each task index issues the same flows no matter
// which worker executes it, so the flow.maxflow.probes total of a parallel
// minimality sweep equals the serial one exactly.
func TestStealProbeTotalsSerialParallel(t *testing.T) {
	g := skewedFixture()
	kappa, lambda := VertexConnectivity(g), EdgeConnectivity(g)
	if kappa != 2 || lambda != 2 {
		t.Fatalf("fixture κ=%d λ=%d, want 2/2", kappa, lambda)
	}
	withFlowSink(t)
	edges := g.Edges()

	count := func(workers int) (int64, []bool) {
		obs.Reset()
		out, err := EdgesRemovableCtx(context.Background(), g, edges, kappa, lambda, workers)
		if err != nil {
			t.Fatal(err)
		}
		return mMaxflowProbes.Value(), out
	}
	serialProbes, serialOut := count(1)
	if serialProbes == 0 {
		t.Fatal("serial sweep issued no probes; fixture no longer exercises the flow path")
	}
	for _, workers := range []int{2, 4, 8} {
		probes, out := count(workers)
		if probes != serialProbes {
			t.Fatalf("workers=%d issued %d probes, serial issued %d", workers, probes, serialProbes)
		}
		for i := range out {
			if out[i] != serialOut[i] {
				t.Fatalf("workers=%d: removable[%d]=%t diverged from serial %t", workers, i, out[i], serialOut[i])
			}
		}
	}
}

// Command floodsim floods a message over a chosen topology under node and
// link failures and reports latency (rounds), message cost and coverage.
//
// Usage:
//
//	floodsim -constraint ktree -n 100 -k 4 -fail 3 -mode random -seed 7
//	floodsim -constraint kdiamond -n 64 -k 3 -fail 2 -mode adversarial
//	floodsim -constraint harary -n 100 -k 4 -trials 200 -fail 3   # reliability
//	floodsim -constraint kdiamond -n 64 -k 3 -fail 2 -json | jq .rounds
//
// -net switches from the simulator to the chaos harness: a real loopback
// TCP cluster with the same failures injected at the socket layer, plus
// seeded link faults (loss, duplication, delay/reordering) and optionally
// the acked reliable protocol:
//
//	floodsim -net -reliable -constraint kdiamond -n 20 -k 4 -fail 3 \
//	    -mode adversarial -loss 0.25 -dup 0.1 -delay 2ms -seed 7
//	floodsim -net -constraint kdiamond -n 20 -k 4 -fail 4 -mode adversarial -linkfail
//
// -budget prices the topology's delivery guarantee under the reliable
// protocol's retry policy without sending a frame — worst-case retry
// amplification, latency and the enforceable frame ceiling per broadcast
// (with -json: the full per-pair report artifact). -guard applies the
// derived enforcement plan to a -net run and reports actual frames against
// the static ceiling:
//
//	floodsim -budget -constraint kdiamond -n 20 -k 4 -json
//	floodsim -net -reliable -guard -constraint kdiamond -n 20 -k 4 -loss 0.25
//
// -json replaces the human-readable report with a single JSON object on
// stdout; diagnostics, the -metrics dump and the -http announcement always
// go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lhg"
	"lhg/internal/flood"
	"lhg/internal/obs"
	"lhg/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("floodsim", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "topology: harary, jd, ktree or kdiamond")
		n          = fs.Int("n", 50, "number of nodes")
		k          = fs.Int("k", 3, "connectivity target")
		source     = fs.Int("source", 0, "flood source node")
		failCount  = fs.Int("fail", 0, "number of node failures to inject")
		mode       = fs.String("mode", "random", "failure mode: random or adversarial")
		seed       = fs.Uint64("seed", 1, "random seed")
		trials     = fs.Int("trials", 1, "trials > 1 runs a Monte-Carlo reliability estimate")
		asJSON     = fs.Bool("json", false, "emit the result as a JSON object on stdout")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
		tracePath  = fs.String("trace", "", "enable tracing and write the span flight recorder to this file (Chrome trace_event JSON) at exit")

		budget = fs.Bool("budget", false, "print the retry-amplification budget analysis for the topology and exit (with -json: the full report artifact)")

		netMode  = fs.Bool("net", false, "run over real loopback TCP sockets (chaos harness) instead of the simulator")
		reliable = fs.Bool("reliable", false, "with -net: acked protocol with retransmission and reconnection")
		guard    = fs.Bool("guard", false, "with -net: enforce the analyzer's budgets (hop/retry budgets, retransmit token bucket, diversity gate)")
		loss     = fs.Float64("loss", 0, "with -net: per-frame drop probability on every link")
		dupProb  = fs.Float64("dup", 0, "with -net: per-frame duplication probability on every link")
		delayMax = fs.Duration("delay", 0, "with -net: max per-frame delay (uniform; causes reordering)")
		linkFail = fs.Bool("linkfail", false, "with -net: fail links instead of nodes")
		waitFor  = fs.Duration("wait", 15*time.Second, "with -net: delivery wait budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	stopTrace := obs.StartTrace(*tracePath, os.Stderr)
	defer stopTrace()
	c, err := lhg.ParseConstraint(*constraint)
	if err != nil {
		return err
	}
	g, err := lhg.Build(context.Background(), c, *n, *k)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(*seed)

	if *budget {
		return runBudget(out, fmt.Sprintf("%s(%d,%d)", c, *n, *k), g, *source, *k, *asJSON)
	}

	if *netMode {
		if *mode != "random" && *mode != "adversarial" {
			return fmt.Errorf("unknown failure mode %q (want random or adversarial)", *mode)
		}
		cfg := netConfig{
			reliable: *reliable,
			guard:    *guard,
			k:        *k,
			loss:     *loss,
			dup:      *dupProb,
			delayMax: *delayMax,
			linkFail: *linkFail,
			wait:     *waitFor,
		}
		name := fmt.Sprintf("%s(%d,%d)", c, *n, *k)
		return runNet(out, name, g, *source, *failCount, *mode, *seed, rng, *asJSON, cfg)
	}

	if *trials > 1 {
		rel, err := flood.Reliability(g, *source, *failCount, *trials, rng)
		if err != nil {
			return err
		}
		if *asJSON {
			return json.NewEncoder(out).Encode(map[string]any{
				"topology":    c.String(),
				"n":           *n,
				"k":           *k,
				"failures":    *failCount,
				"trials":      *trials,
				"reliability": rel,
			})
		}
		fmt.Fprintf(out, "topology: %s(%d,%d)  failures: %d  trials: %d\n", c, *n, *k, *failCount, *trials)
		fmt.Fprintf(out, "reliability (full coverage): %.4f\n", rel)
		return nil
	}

	var fails flood.Failures
	switch *mode {
	case "random":
		fails, err = flood.RandomNodeFailures(g, *source, *failCount, rng)
	case "adversarial":
		fails, err = flood.AdversarialNodeFailures(g, *source, *failCount)
	default:
		return fmt.Errorf("unknown failure mode %q (want random or adversarial)", *mode)
	}
	if err != nil {
		return err
	}
	res, err := flood.Run(g, *source, fails)
	if err != nil {
		return err
	}
	if *asJSON {
		return json.NewEncoder(out).Encode(map[string]any{
			"topology": c.String(),
			"n":        *n,
			"k":        *k,
			"edges":    g.Size(),
			"mode":     *mode,
			"failed":   fails.Nodes,
			"rounds":   res.Rounds,
			"messages": res.Messages,
			"reached":  res.Reached,
			"alive":    res.Alive,
			"complete": res.Complete,
		})
	}
	fmt.Fprintf(out, "topology:   %s(%d,%d), %d edges, diameter %d\n", c, *n, *k, g.Size(), g.Diameter())
	fmt.Fprintf(out, "failures:   %v (%s)\n", fails.Nodes, *mode)
	fmt.Fprintf(out, "rounds:     %d\n", res.Rounds)
	fmt.Fprintf(out, "messages:   %d\n", res.Messages)
	fmt.Fprintf(out, "coverage:   %d/%d alive nodes\n", res.Reached, res.Alive)
	fmt.Fprintf(out, "complete:   %t\n", res.Complete)
	return nil
}
